//! Whole-document potential validity: **Problem PV** (paper Section 3).
//!
//! Solved exactly as the paper prescribes (Section 4): run the element
//! content recognizer (Problem ECPV) at **every** element node of the
//! document, over the `Δ_T` child-symbol view of that node. A document is
//! potentially valid iff its root carries the designated root element type
//! and every node's content is potentially valid.

use crate::dag::DagSet;
use crate::depth::DepthPolicy;
use crate::memo::{MemoStats, MemoVerdict, ShapeCache};
use crate::recognizer::{EcRecognizer, RecBuffers, RecCtx, RecognizerStats};
use crate::token::{ChildSym, Tokens};
use pv_dtd::DtdAnalysis;
use pv_xml::{Document, NodeId};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a document failed the potential-validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PvViolationKind {
    /// The document's root element is not the DTD root `r`
    /// (Definition 3 requires `root(w) = r`).
    RootMismatch {
        /// The root element found in the document.
        found: String,
        /// The DTD's designated root.
        expected: String,
    },
    /// An element tag is not declared in the DTD (violates the problem
    /// precondition `elements(w) ⊆ T`).
    UndeclaredElement {
        /// The undeclared name.
        name: String,
    },
    /// A node's child sequence was rejected by the ECRecognizer.
    ContentRejected {
        /// Rendered symbol at which recognition failed, e.g. `<c>` or `σ`.
        symbol: String,
        /// Index of the offending symbol in the node's child sequence.
        index: usize,
    },
}

/// A potential-validity violation at a specific node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvViolation {
    /// The offending node (an element node, or the child node for
    /// undeclared elements).
    pub node: NodeId,
    /// What went wrong.
    pub kind: PvViolationKind,
}

impl fmt::Display for PvViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            PvViolationKind::RootMismatch { found, expected } => {
                write!(f, "root element <{found}> does not match DTD root <{expected}>")
            }
            PvViolationKind::UndeclaredElement { name } => {
                write!(f, "element <{name}> at {} is not declared", self.node)
            }
            PvViolationKind::ContentRejected { symbol, index } => write!(
                f,
                "content of node {} is not potentially valid: symbol {symbol} (child #{index}) \
                 cannot be matched by any markup insertion",
                self.node
            ),
        }
    }
}

/// Result of a whole-document check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvOutcome {
    /// First violation found in document order, or `None` if potentially
    /// valid.
    pub violation: Option<PvViolation>,
    /// Work counters accumulated over all per-node recognizers.
    pub stats: RecognizerStats,
}

impl PvOutcome {
    /// `true` iff the document is potentially valid.
    #[inline]
    pub fn is_potentially_valid(&self) -> bool {
        self.violation.is_none()
    }
}

/// Reusable per-scan buffers for the checker's per-node hot path: one
/// recognizer (re-armed per node via [`EcRecognizer::reset`]) and one
/// child-symbol buffer (refilled per node via
/// [`Tokens::children_into`]), so checking a node allocates nothing in
/// steady state. Create one per document scan — or one per parallel
/// worker — with [`PvChecker::scratch`]; the sequential and batch entry
/// points do so internally.
pub struct CheckScratch<'s> {
    rec: EcRecognizer<'s>,
    syms: Vec<ChildSym>,
}

impl CheckScratch<'_> {
    /// Retires this scratch into a lifetime-free [`ScratchStash`] whose
    /// buffer capacities a later scan — possibly against a *different*
    /// checker — can adopt via [`PvChecker::scratch_from`]. This is how a
    /// persistent pool worker keeps its scratch warm across parallel
    /// regions: the scratch itself borrows the checker and cannot leave
    /// the region, but its plain-data buffers can.
    pub fn into_stash(mut self) -> ScratchStash {
        self.syms.clear();
        ScratchStash { syms: self.syms, rec: self.rec.into_buffers() }
    }
}

/// Lifetime-free recycled checker buffers (see
/// [`CheckScratch::into_stash`]). Carries no verdict state — only heap
/// capacities — so adopting a stash can never influence an outcome.
#[derive(Default)]
pub struct ScratchStash {
    syms: Vec<ChildSym>,
    rec: RecBuffers,
}

/// A reusable potential-validity checker for one compiled DTD.
///
/// Construction compiles the per-element DAGs once (`O(k)`); each document
/// check is then `O(k·D·n)` (Theorem 4), linear in the document for a fixed
/// DTD.
///
/// ## Shape memoization
///
/// The checker carries a [`ShapeCache`] (on by default): every ECPV run is
/// keyed by `(element type, child-symbol shape)` and repeated shapes are
/// answered from the cache with their recorded stats delta replayed, so
/// outcomes — verdict, failing node/index/symbol, *and every counter* —
/// are bit-identical with the memo on or off (`tests/memo_differential.rs`
/// enforces this). Repetitive document-centric corpora drop from a
/// recognizer walk per node to a hash lookup per node; see
/// [`crate::memo`] for the sharding and capacity rules. Disable with
/// [`PvChecker::set_memo_enabled`] (the `pvx check --no-memo` path).
pub struct PvChecker<'a> {
    analysis: &'a DtdAnalysis,
    /// Shared (`Arc`) so a resident engine can hand pre-compiled DAGs to
    /// per-request checker views without re-deriving them — see
    /// [`crate::engine::CheckEngine`]. Plain construction pays one extra
    /// allocation, nothing else.
    dags: Arc<DagSet>,
    depth: u32,
    /// Per-symbol speculation budget. Resolved at construction: the
    /// statically certified budget when [`pv_dtd::budget::certify`]
    /// produces one, the full default otherwise. Certificates only
    /// shrink the budget, never change verdicts —
    /// `tests/analyze_soundness.rs` proves the bit-identity.
    spec_budget: u32,
    /// Shared for the same reason: a warm cache outliving any one checker
    /// view is the service's per-DTD state.
    memo: Option<Arc<ShapeCache>>,
}

impl<'a> PvChecker<'a> {
    /// Builds a checker with the default (automatic) depth policy.
    pub fn new(analysis: &'a DtdAnalysis) -> Self {
        Self::with_policy(analysis, DepthPolicy::Auto)
    }

    /// Builds a checker with an explicit depth policy. Runs the static
    /// budget certifier and adopts its (possibly reduced) budget.
    pub fn with_policy(analysis: &'a DtdAnalysis, policy: DepthPolicy) -> Self {
        PvChecker {
            analysis,
            dags: Arc::new(DagSet::new(analysis)),
            depth: policy.resolve(analysis),
            spec_budget: pv_dtd::budget::certify(analysis).applied_budget(),
            memo: Some(Arc::new(ShapeCache::new())),
        }
    }

    /// A checker view over pre-compiled shared parts (the engine's
    /// per-request path: no DAG compilation, no re-certification, the
    /// warm shape cache is the shared one). Outcomes are identical to a
    /// freshly built checker's.
    pub(crate) fn from_shared(
        analysis: &'a DtdAnalysis,
        dags: Arc<DagSet>,
        memo: Option<Arc<ShapeCache>>,
        depth: u32,
        spec_budget: u32,
    ) -> Self {
        PvChecker { analysis, dags, depth, spec_budget, memo }
    }

    /// The per-symbol speculation budget in effect.
    #[inline]
    pub fn spec_budget(&self) -> u32 {
        self.spec_budget
    }

    /// Overrides the speculation budget (differential tests and
    /// benchmarks force the full default to compare against a certified
    /// run). Raising the budget above the default never changes verdicts;
    /// lowering it below a certified bound may deny speculation
    /// (`specs_denied > 0`) — exactly what the soundness suite measures.
    pub fn set_spec_budget(&mut self, budget: u32) {
        self.spec_budget = budget;
    }

    /// Enables or disables shape memoization. Turning it off drops the
    /// cache; turning it back on starts cold. Outcomes are identical
    /// either way — this is purely a time/space knob.
    pub fn set_memo_enabled(&mut self, enabled: bool) {
        match (enabled, self.memo.is_some()) {
            (true, false) => self.memo = Some(Arc::new(ShapeCache::new())),
            (false, true) => self.memo = None,
            _ => {}
        }
    }

    /// `true` while shape memoization is active.
    #[inline]
    pub fn memo_enabled(&self) -> bool {
        self.memo.is_some()
    }

    /// Replaces the memo with a fresh cache bounded to roughly `entries`
    /// verdicts (the capacity divides over the cache's shards; a full
    /// shard flushes rather than grows — see [`crate::memo`]).
    pub fn set_memo_capacity(&mut self, entries: usize) {
        self.memo = Some(Arc::new(ShapeCache::with_capacity(entries)));
    }

    /// Telemetry snapshot of the shape cache, or `None` when memoization
    /// is disabled. Hit/miss counts are scheduling-dependent under
    /// parallel checking (see [`MemoStats`]); outcomes never are.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// Drops every cached verdict (telemetry counters survive). Used by
    /// benchmarks to measure cold-cache behaviour.
    pub fn memo_clear(&self) {
        if let Some(m) = &self.memo {
            m.clear();
        }
    }

    /// Builds a per-scan scratch (recognizer + symbol buffer) borrowing
    /// this checker's DAGs. The recognizer context is created here — once
    /// per scan or per parallel worker, not once per node.
    pub fn scratch(&self) -> CheckScratch<'_> {
        CheckScratch {
            rec: EcRecognizer::new(self.rec_ctx(), self.analysis.root, self.depth),
            syms: Vec::new(),
        }
    }

    /// [`PvChecker::scratch`] adopting the buffer capacities of a retired
    /// stash (see [`CheckScratch::into_stash`]). The stash carries no
    /// verdict state, so the scratch behaves exactly like a fresh one.
    pub fn scratch_from(&self, stash: ScratchStash) -> CheckScratch<'_> {
        CheckScratch {
            rec: EcRecognizer::with_buffers(
                self.rec_ctx(),
                self.analysis.root,
                self.depth,
                stash.rec,
            ),
            syms: stash.syms,
        }
    }

    /// The recognizer context every execution path of this checker uses:
    /// shared DAGs, reachability, and the resolved speculation budget.
    /// Single construction point so local, parallel, streaming, and
    /// suggestion paths can never disagree on the budget.
    pub fn rec_ctx(&self) -> RecCtx<'_> {
        RecCtx::with_budget(self.analysis, &self.dags, self.spec_budget)
    }

    /// The compiled DTD this checker runs against.
    #[inline]
    pub fn analysis(&self) -> &'a DtdAnalysis {
        self.analysis
    }

    /// The per-element DAGs (exposed for the incremental layer and tests).
    #[inline]
    pub fn dags(&self) -> &DagSet {
        &self.dags
    }

    /// The resolved elision budget per ECPV instance.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Documents below this many element nodes are always checked
    /// sequentially, whatever `jobs` says: the scoped parallel region's
    /// setup (~100 µs of thread spawning) outweighs per-node recognizer
    /// work by orders of magnitude at this size. 512 nodes × ~100 ns/node
    /// ≈ 50 µs of useful work is a conservative break-even floor;
    /// `experiments --table parallel` prints both regimes.
    pub const PARALLEL_MIN_NODES: usize = 512;

    /// Definition 3's root condition `root(w) = r`, shared verbatim by the
    /// sequential, parallel, and pooled document checks (the bit-identity
    /// guarantee between them depends on all using exactly this).
    pub(crate) fn check_root(&self, doc: &Document) -> Option<PvViolation> {
        let root_name = doc.name(doc.root()).unwrap_or("");
        if self.analysis.id(root_name) != Some(self.analysis.root) {
            return Some(PvViolation {
                node: doc.root(),
                kind: PvViolationKind::RootMismatch {
                    found: root_name.to_owned(),
                    expected: self.analysis.name(self.analysis.root).to_owned(),
                },
            });
        }
        None
    }

    /// Checks Problem PV for the whole document.
    pub fn check_document(&self, doc: &Document) -> PvOutcome {
        let mut scratch = self.scratch();
        self.check_document_with(doc, &mut scratch)
    }

    /// [`PvChecker::check_document`] with a caller-provided scratch, for
    /// drivers scanning many documents that want to reuse the buffers
    /// (the batch checker's workers do).
    pub fn check_document_with(&self, doc: &Document, scratch: &mut CheckScratch<'_>) -> PvOutcome {
        let mut stats = RecognizerStats::default();
        // Root element type must match r.
        if let Some(v) = self.check_root(doc) {
            return PvOutcome { violation: Some(v), stats };
        }
        for node in doc.elements() {
            if let Some(v) = self.check_node_with(doc, node, &mut stats, scratch) {
                return PvOutcome { violation: Some(v), stats };
            }
        }
        PvOutcome { violation: None, stats }
    }

    /// Checks Problem PV with per-element-node recognizer runs sharded
    /// over `jobs` worker threads (`0` = one per available CPU).
    ///
    /// Element nodes are independent ECPV instances (paper Section 4), so
    /// they are distributed over a work-stealing pool ([`pv_par`]) and the
    /// per-node results are **reduced in document order**: the returned
    /// [`PvOutcome`] — the violation (first failing node in document
    /// order, same node, same symbol index) *and* the work counters — is
    /// bit-identical to [`PvChecker::check_document`]'s, regardless of
    /// worker count or scheduling. Counter identity holds because
    /// sequential stats are a prefix sum of per-node stats and
    /// [`RecognizerStats::merge`] is commutative: the reduction folds
    /// exactly the nodes the sequential checker would have visited.
    ///
    /// On an already-failing document, workers that observe a known
    /// violation skip nodes *after* it (the known first-failure index only
    /// ever moves earlier, so no node at or before the final first failure
    /// is ever skipped); a potentially valid document gets no such
    /// shortcut and every node is checked, just as sequentially.
    ///
    /// The streaming checker ([`PvChecker::stream_checker`]) shares this
    /// contract from the other direction: where the parallel path pays a
    /// `fetch_min` race so concurrently-found violations agree on the
    /// document-order-first one, the streaming path's candidate protocol
    /// only ever *replaces* its frozen violation with a preorder-earlier
    /// one, converging on the same node. All three checkers — sequential
    /// stop-at-first, parallel `fetch_min`, streaming candidate — report
    /// the identical violation (node, kind, symbol index) and counters;
    /// `tests/stream_differential.rs` asserts exactly this
    /// (`early_exit_reports_the_same_violation_everywhere`).
    ///
    /// `jobs <= 1` delegates to the sequential checker outright, as does
    /// any document below [`PvChecker::PARALLEL_MIN_NODES`] element nodes:
    /// spinning up a parallel region costs on the order of 100 µs, which
    /// dominates small documents completely, so `--jobs 0`/auto only
    /// shards when the per-node work can plausibly amortize it (the
    /// threshold is visible in `experiments --table parallel`). The
    /// outcome is bit-identical either way.
    pub fn check_document_parallel(&self, doc: &Document, jobs: usize) -> PvOutcome {
        let jobs = pv_par::effective_jobs(jobs);
        if jobs <= 1 || doc.element_count() < Self::PARALLEL_MIN_NODES {
            return self.check_document(doc);
        }
        // Root check first, exactly as in the sequential path.
        if let Some(v) = self.check_root(doc) {
            return PvOutcome { violation: Some(v), stats: RecognizerStats::default() };
        }
        let nodes: Vec<NodeId> = doc.elements().collect();
        // Earliest node index known to carry a violation; only ever
        // decreases, so nodes at or before the final minimum are never
        // pruned and their per-node results are always computed.
        let first_bad = AtomicUsize::new(usize::MAX);
        // Workers carry a per-worker scratch (recognizer buffers) and share
        // this checker's shape cache by reference: the cache is sharded and
        // read-mostly, and a hit replays the recorded stats delta, so the
        // reduction below stays bit-identical to the sequential checker
        // whether a node's verdict was computed or cached.
        let per_node = pv_par::map_indexed_with(
            jobs,
            nodes.len(),
            || self.scratch(),
            |scratch, i| {
                if i > first_bad.load(Ordering::Relaxed) {
                    return None; // after a known violation: result unreachable
                }
                let mut stats = RecognizerStats::default();
                let violation = self.check_node_with(doc, nodes[i], &mut stats, scratch);
                if violation.is_some() {
                    first_bad.fetch_min(i, Ordering::Relaxed);
                }
                Some((violation, stats))
            },
        );
        // Deterministic reduction in document order.
        reduce_node_results(per_node)
    }

    /// Checks a batch of documents against this DTD on `jobs` worker
    /// threads (`0` = one per available CPU), returning one outcome per
    /// document in input order — outcome `i` is bit-identical to
    /// `check_document(&docs[i])`.
    ///
    /// Scheduling is **two-level** ([`pv_par::map_grouped_with`]): whole
    /// documents are stolen first (the right granularity while documents
    /// outnumber idle workers — a worker scans its documents' nodes
    /// in order, cache-local), and a worker that finds no untouched
    /// document left *joins* the started document with the most nodes
    /// remaining, claiming chunks of its node range. Only documents big
    /// enough to bottleneck the batch are node-granular (joinable) at
    /// all — larger than `max(`[`PvChecker::PARALLEL_MIN_NODES`]`,
    /// total/4·workers)` nodes; the rest run as single whole-document
    /// tasks with zero per-node scheduling overhead. A batch mixing one giant document with many small ones
    /// therefore pipelines instead of serializing on the giant one.
    ///
    /// Bit-identity holds for the same reason as in
    /// [`PvChecker::check_document_parallel`]: per-node results are
    /// reduced per document in document order, nodes after a document's
    /// known first violation are pruned (never any node at or before it),
    /// and the stats merge is commutative.
    pub fn check_batch(&self, docs: &[Document], jobs: usize) -> Vec<PvOutcome> {
        if pv_par::effective_jobs(jobs) <= 1 {
            let mut scratch = self.scratch();
            return docs.iter().map(|d| self.check_document_with(d, &mut scratch)).collect();
        }
        // Per-document plan: the root check happens up front (it is one
        // string comparison), leaving only per-node ECPV work to shard.
        // Most documents stay **one task each** — whole-document
        // granularity has no per-node sharding overhead, and splitting a
        // document that checks in microseconds buys nothing. Only
        // documents big enough to bottleneck the batch become
        // node-granular groups idle workers can join into.
        let workers = pv_par::effective_jobs(jobs);
        let total_nodes: usize = docs.iter().map(Document::element_count).sum();
        let split = Self::batch_split_threshold(workers, total_nodes);
        let plans: Vec<BatchPlan> = docs.iter().map(|d| self.plan_document(d, split)).collect();
        let sizes: Vec<usize> = plans.iter().map(BatchPlan::task_count).collect();
        let first_bad: Vec<AtomicUsize> =
            docs.iter().map(|_| AtomicUsize::new(usize::MAX)).collect();
        let per_doc = pv_par::map_grouped_with(
            jobs,
            &sizes,
            || self.scratch(),
            |scratch, g, i| {
                self.run_batch_task(&docs[g], &plans[g], &first_bad[g], i, scratch)
            },
        );
        plans.iter().zip(per_doc).map(|(plan, results)| plan.reduce(results)).collect()
    }

    /// The node count above which a batch document becomes a joinable
    /// node-granular group instead of one whole-document task. Splitting
    /// costs per-node scheduling overhead, so it is only worth paying for
    /// documents that could actually bottleneck the region: larger than
    /// the absolute parallel threshold **and** large relative to the
    /// batch (a document holding less than a quarter of one worker's
    /// average share can never leave the other workers idle long —
    /// whole-document stealing balances it fine).
    pub(crate) fn batch_split_threshold(workers: usize, total_nodes: usize) -> usize {
        Self::PARALLEL_MIN_NODES.max(total_nodes / (4 * workers.max(1)))
    }

    /// How one batch document is scheduled (see [`PvChecker::check_batch`]).
    pub(crate) fn plan_document(&self, doc: &Document, split_threshold: usize) -> BatchPlan {
        match self.check_root(doc) {
            Some(v) => BatchPlan::RootFailed(v),
            None if doc.element_count() < split_threshold => BatchPlan::Whole,
            None => BatchPlan::PerNode(doc.elements().collect()),
        }
    }

    /// One scheduled task of a batch region: either the whole document
    /// (small documents) or one node (joinable large documents).
    pub(crate) fn run_batch_task(
        &self,
        doc: &Document,
        plan: &BatchPlan,
        first_bad: &AtomicUsize,
        i: usize,
        scratch: &mut CheckScratch<'_>,
    ) -> Option<(Option<PvViolation>, RecognizerStats)> {
        match plan {
            BatchPlan::RootFailed(_) => unreachable!("root-failed documents have no tasks"),
            BatchPlan::Whole => {
                debug_assert_eq!(i, 0);
                let mut stats = RecognizerStats::default();
                for node in doc.elements() {
                    if let Some(v) = self.check_node_with(doc, node, &mut stats, scratch) {
                        return Some((Some(v), stats));
                    }
                }
                Some((None, stats))
            }
            BatchPlan::PerNode(nodes) => {
                if i > first_bad.load(Ordering::Relaxed) {
                    return None; // after a known violation in this doc
                }
                let mut stats = RecognizerStats::default();
                let violation = self.check_node_with(doc, nodes[i], &mut stats, scratch);
                if violation.is_some() {
                    first_bad.fetch_min(i, Ordering::Relaxed);
                }
                Some((violation, stats))
            }
        }
    }

    /// Checks Problem ECPV for a single node's content (used by the
    /// incremental layer after markup edits).
    pub fn check_node(
        &self,
        doc: &Document,
        node: NodeId,
        stats: &mut RecognizerStats,
    ) -> Option<PvViolation> {
        let mut scratch = self.scratch();
        self.check_node_with(doc, node, stats, &mut scratch)
    }

    /// [`PvChecker::check_node`] against a reusable scratch — the per-node
    /// body of every document scan. The hot path performs no allocation:
    /// the child-symbol buffer is refilled in place, a memo hit replays
    /// the cached stats delta, and a miss re-arms the scratch recognizer.
    pub(crate) fn check_node_with(
        &self,
        doc: &Document,
        node: NodeId,
        stats: &mut RecognizerStats,
        scratch: &mut CheckScratch<'_>,
    ) -> Option<PvViolation> {
        let elem = match self.analysis.id(doc.name(node).unwrap_or("")) {
            Some(e) => e,
            None => {
                return Some(PvViolation {
                    node,
                    kind: PvViolationKind::UndeclaredElement {
                        name: doc.name(node).unwrap_or("").to_owned(),
                    },
                })
            }
        };
        // Borrow juggling: the symbol buffer is taken out of the scratch so
        // the recognizer half can be borrowed mutably alongside it.
        let mut syms = std::mem::take(&mut scratch.syms);
        let result = match Tokens::children_into(doc, node, &self.analysis.dtd, &mut syms) {
            Ok(()) => {
                self.check_symbols_with(elem, &syms, stats, scratch).map(|(index, symbol)| {
                    PvViolation { node, kind: PvViolationKind::ContentRejected { symbol, index } }
                })
            }
            Err(e) => Some(PvViolation {
                node: e.node,
                kind: PvViolationKind::UndeclaredElement { name: e.name },
            }),
        };
        scratch.syms = syms;
        result
    }

    /// Runs one ECPV instance; returns the failing index/symbol, if any.
    pub fn check_symbols(
        &self,
        elem: pv_dtd::ElemId,
        syms: &[ChildSym],
        stats: &mut RecognizerStats,
    ) -> Option<(usize, String)> {
        let mut scratch = self.scratch();
        self.check_symbols_with(elem, syms, stats, &mut scratch)
    }

    /// [`PvChecker::check_symbols`] against a reusable scratch, memoized
    /// by `(elem, shape)` when the shape cache is on. The violation's
    /// display string is re-rendered from `syms` on a hit (the failing
    /// *index* is shape-intrinsic, so it caches; the string is not stored).
    pub fn check_symbols_with(
        &self,
        elem: pv_dtd::ElemId,
        syms: &[ChildSym],
        stats: &mut RecognizerStats,
        scratch: &mut CheckScratch<'_>,
    ) -> Option<(usize, String)> {
        // Childless content is trivially potentially valid (every element
        // is nullable under G′ — Theorem 3) and the recognizer would touch
        // no counter: skip it and the memo alike.
        if syms.is_empty() {
            return None;
        }
        let render = |i: u32| (i as usize, syms[i as usize].display(&self.analysis.dtd));
        if let Some(memo) = &self.memo {
            if let Some(hit) = memo.lookup(elem, syms) {
                stats.merge(&hit.stats);
                return hit.failing.map(render);
            }
            let (failing, delta) = self.run_symbols(elem, syms, scratch);
            memo.insert(elem, syms, MemoVerdict { failing, stats: delta });
            stats.merge(&delta);
            return failing.map(render);
        }
        let (failing, delta) = self.run_symbols(elem, syms, scratch);
        stats.merge(&delta);
        failing.map(render)
    }

    /// The uncached ECPV run, returning the failing index and the exact
    /// stats delta the run accumulated (what the memo stores and replays).
    fn run_symbols(
        &self,
        elem: pv_dtd::ElemId,
        syms: &[ChildSym],
        scratch: &mut CheckScratch<'_>,
    ) -> (Option<u32>, RecognizerStats) {
        let mut delta = RecognizerStats::default();
        scratch.rec.reset(elem, self.depth);
        for (i, &x) in syms.iter().enumerate() {
            delta.symbols += 1;
            if !scratch.rec.validate(x, &mut delta) {
                return (Some(i as u32), delta);
            }
        }
        (None, delta)
    }
}

/// How one document of a batch is scheduled: no tasks at all (root
/// violation, found in the planning pre-pass), one whole-document task
/// (small documents — no per-node sharding overhead), or one task per
/// element node (large documents idle workers may join). Shared by the
/// scoped [`PvChecker::check_batch`] and the engine's pooled batch; the
/// reduction produces outcomes bit-identical to the sequential checker
/// in every variant.
pub(crate) enum BatchPlan {
    /// The root check already failed; zero tasks.
    RootFailed(PvViolation),
    /// One task running every node sequentially with early exit (the
    /// task iterates `doc.elements()` directly — no node list is
    /// materialized for the common small-document case).
    Whole,
    /// One task per node, document-order reduction. Only this plan needs
    /// random access by task index, so only it collects the node ids.
    PerNode(Vec<NodeId>),
}

impl BatchPlan {
    /// Number of tasks this document contributes to the grouped region.
    pub(crate) fn task_count(&self) -> usize {
        match self {
            BatchPlan::RootFailed(_) => 0,
            BatchPlan::Whole => 1,
            BatchPlan::PerNode(nodes) => nodes.len(),
        }
    }

    /// Folds the group's task results into the document outcome.
    pub(crate) fn reduce(
        &self,
        results: Vec<Option<(Option<PvViolation>, RecognizerStats)>>,
    ) -> PvOutcome {
        match self {
            BatchPlan::RootFailed(v) => {
                PvOutcome { violation: Some(v.clone()), stats: RecognizerStats::default() }
            }
            // A whole-document task already folded its nodes (stopping at
            // the first violation) — its single result IS the outcome.
            BatchPlan::Whole | BatchPlan::PerNode(_) => reduce_node_results(results),
        }
    }
}

/// The deterministic document-order reduction shared by every sharded
/// check (scoped parallel, two-level batch, and the engine's pooled
/// paths): folds per-node `(violation, stats)` results in document order,
/// stopping at the first violation exactly as the sequential scan would.
/// `None` entries are nodes pruned *after* a known violation — the fold
/// never reaches them, which the pruning protocol guarantees (the known
/// first-failure index only ever decreases).
pub(crate) fn reduce_node_results(
    per_node: impl IntoIterator<Item = Option<(Option<PvViolation>, RecognizerStats)>>,
) -> PvOutcome {
    let mut stats = RecognizerStats::default();
    for entry in per_node {
        let (violation, node_stats) =
            entry.expect("nodes up to the first violation are never pruned");
        stats.merge(&node_stats);
        if violation.is_some() {
            return PvOutcome { violation, stats };
        }
    }
    PvOutcome { violation: None, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_dtd::builtin::BuiltinDtd;

    fn check(b: BuiltinDtd, xml: &str) -> PvOutcome {
        let analysis = b.analysis();
        let checker = PvChecker::new(&analysis);
        let doc = pv_xml::parse(xml).unwrap();
        checker.check_document(&doc)
    }

    const W: &str =
        "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>";
    const S: &str =
        "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>";
    /// Figure 3 / Example 2: the completed, valid extension of `s`.
    const S_COMPLETED: &str =
        "<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>";

    #[test]
    fn example1_w_is_not_potentially_valid() {
        let out = check(BuiltinDtd::Figure1, W);
        assert!(!out.is_potentially_valid());
        let v = out.violation.unwrap();
        assert!(
            matches!(&v.kind, PvViolationKind::ContentRejected { symbol, index: 2 }
                if symbol == "<c>"),
            "expected rejection at <c> (Figure 6 A step 5), got {v:?}"
        );
    }

    #[test]
    fn example1_s_is_potentially_valid() {
        assert!(check(BuiltinDtd::Figure1, S).is_potentially_valid());
    }

    #[test]
    fn example2_completed_document_is_potentially_valid() {
        // Valid documents are trivially potentially valid.
        assert!(check(BuiltinDtd::Figure1, S_COMPLETED).is_potentially_valid());
    }

    #[test]
    fn root_mismatch_detected() {
        let out = check(BuiltinDtd::Figure1, "<a><b/></a>");
        assert!(matches!(
            out.violation.unwrap().kind,
            PvViolationKind::RootMismatch { .. }
        ));
    }

    #[test]
    fn undeclared_element_detected() {
        let out = check(BuiltinDtd::Figure1, "<r><zzz/></r>");
        assert!(matches!(
            out.violation.unwrap().kind,
            PvViolationKind::UndeclaredElement { name } if name == "zzz"
        ));
    }

    #[test]
    fn empty_root_is_potentially_valid() {
        // <r/> — everything below is elidable.
        assert!(check(BuiltinDtd::Figure1, "<r/>").is_potentially_valid());
    }

    #[test]
    fn bare_text_under_root_is_potentially_valid() {
        // "A quick brown fox" with no markup at all: σ reaches through
        // a → c, so wrapping tags can still be inserted.
        assert!(check(BuiltinDtd::Figure1, "<r>A quick brown fox</r>").is_potentially_valid());
    }

    #[test]
    fn violation_deep_in_document_found() {
        // Deep inside: <e> with content (must be EMPTY).
        let out = check(BuiltinDtd::Figure1, "<r><a><b/><c/><d><e>boom</e></d></a></r>");
        let v = out.violation.unwrap();
        assert!(matches!(v.kind, PvViolationKind::ContentRejected { .. }));
    }

    #[test]
    fn example5_document_checks_with_default_policy() {
        // <a><b/><b/></a> against T1 — Figure 7's would-be-infinite case;
        // Auto policy bounds the speculation and accepts.
        assert!(check(BuiltinDtd::T1, "<a><b/><b/></a>").is_potentially_valid());
    }

    #[test]
    fn example6_document_accepts() {
        assert!(check(BuiltinDtd::T2, "<a><b/><b/></a>").is_potentially_valid());
    }

    #[test]
    fn strong_dtd_depth_zero_rejects_deep_case() {
        let analysis = BuiltinDtd::T2.analysis();
        let checker = PvChecker::with_policy(&analysis, DepthPolicy::Bounded(0));
        let doc = pv_xml::parse("<a><b/><b/><b/></a>").unwrap();
        assert!(!checker.check_document(&doc).is_potentially_valid());
        let checker = PvChecker::with_policy(&analysis, DepthPolicy::Bounded(1));
        assert!(checker.check_document(&doc).is_potentially_valid());
    }

    #[test]
    fn xhtml_partial_markup_accepts() {
        let xml = "<html><body><p>Hello <b>bold <i>and italic</i></b> world</p>\
                   <ul><li>one</li><li>two</li></ul></body></html>";
        assert!(check(BuiltinDtd::XhtmlBasic, xml).is_potentially_valid());
    }

    #[test]
    fn xhtml_misplaced_block_rejects() {
        // <li> directly under <p> can never be fixed by adding markup.
        let xml = "<html><body><p><li>nope</li></p></body></html>";
        assert!(!check(BuiltinDtd::XhtmlBasic, xml).is_potentially_valid());
    }

    #[test]
    fn tei_incomplete_header_accepts() {
        // teiHeader structure missing entirely; title text floating — all
        // completable.
        let xml = "<TEI><text><body><div><p>Call me <name>Ishmael</name>.</p></div></body>\
                   </text></TEI>";
        assert!(check(BuiltinDtd::TeiLite, xml).is_potentially_valid());
    }

    #[test]
    fn stats_populated() {
        let out = check(BuiltinDtd::Figure1, S);
        assert!(out.stats.symbols >= 4);
        assert!(out.stats.node_visits > 0);
    }

    /// A mid-sized document exercising many nodes: valid shape repeated.
    fn wide_doc(reps: usize, poison: bool) -> Document {
        let mut xml = String::from("<r>");
        for i in 0..reps {
            if poison && i == reps / 2 {
                // <e> must be EMPTY: an unfixable violation mid-document.
                xml.push_str("<a><b/><e>boom</e></a>");
            } else {
                xml.push_str("<a><b/><c>text</c><d/></a>");
            }
        }
        xml.push_str("</r>");
        pv_xml::parse(&xml).unwrap()
    }

    #[test]
    fn parallel_outcome_bit_identical_on_valid_docs() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        for doc in [pv_xml::parse(S).unwrap(), wide_doc(60, false)] {
            let seq = checker.check_document(&doc);
            assert!(seq.is_potentially_valid());
            for jobs in [1usize, 2, 3, 8] {
                assert_eq!(checker.check_document_parallel(&doc, jobs), seq, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn parallel_outcome_bit_identical_on_failing_docs() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        for doc in [
            pv_xml::parse(W).unwrap(),
            wide_doc(60, true),
            pv_xml::parse("<a><b/></a>").unwrap(), // root mismatch
            pv_xml::parse("<r><zzz/></r>").unwrap(), // undeclared element
        ] {
            let seq = checker.check_document(&doc);
            assert!(!seq.is_potentially_valid());
            for jobs in [1usize, 2, 3, 8] {
                assert_eq!(checker.check_document_parallel(&doc, jobs), seq, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn batch_matches_per_document_checks() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let docs: Vec<Document> =
            (0..12).map(|i| wide_doc(10 + i, i % 3 == 0)).collect();
        let expect: Vec<PvOutcome> = docs.iter().map(|d| checker.check_document(d)).collect();
        for jobs in [0usize, 1, 2, 8] {
            assert_eq!(checker.check_batch(&docs, jobs), expect, "jobs={jobs}");
        }
        assert!(checker.check_batch(&[], 4).is_empty());
    }

    #[test]
    fn check_node_reusable() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let doc = pv_xml::parse(S).unwrap();
        let a = doc.children(doc.root())[0];
        let mut stats = RecognizerStats::default();
        assert!(checker.check_node(&doc, a, &mut stats).is_none());
    }

    #[test]
    fn memo_outcomes_bit_identical_cold_and_warm() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let mut plain = PvChecker::new(&analysis);
        plain.set_memo_enabled(false);
        assert!(!plain.memo_enabled());
        let memoized = PvChecker::new(&analysis);
        assert!(memoized.memo_enabled());
        for doc in [
            pv_xml::parse(S).unwrap(),
            pv_xml::parse(W).unwrap(),
            wide_doc(80, false),
            wide_doc(80, true),
        ] {
            let expect = plain.check_document(&doc);
            let cold = memoized.check_document(&doc);
            let warm = memoized.check_document(&doc);
            assert_eq!(cold, expect, "cold cache diverged");
            assert_eq!(warm, expect, "warm cache diverged");
        }
        let stats = memoized.memo_stats().unwrap();
        assert!(stats.hits > 0, "repetitive wide_doc must hit: {stats:?}");
        assert!(stats.entries > 0);
    }

    #[test]
    fn memo_hits_across_repeated_shapes_in_one_document() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let doc = wide_doc(100, false);
        assert!(checker.check_document(&doc).is_potentially_valid());
        let stats = checker.memo_stats().unwrap();
        // 100 identical <a> blocks: one miss per distinct shape, the other
        // ~99 <a> nodes hit. (Childless nodes bypass the memo entirely.)
        assert!(stats.hits >= 90, "{stats:?}");
        assert!(stats.entries <= 16, "{stats:?}");
        // Clearing keeps telemetry but drops entries.
        checker.memo_clear();
        assert_eq!(checker.memo_stats().unwrap().entries, 0);
    }

    #[test]
    fn memo_capacity_bounds_adversarial_growth() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let mut checker = PvChecker::new(&analysis);
        checker.set_memo_capacity(64);
        // Many <d> nodes with distinct mixed-content shapes (x e … e),
        // each wrapped in its own legal <a> block under r → (a+).
        let mut xml = String::from("<r>");
        for i in 0..400 {
            xml.push_str("<a><d>x");
            for _ in 0..(i % 40) {
                xml.push_str("<e/>");
            }
            xml.push_str("</d></a>");
        }
        xml.push_str("</r>");
        let doc = pv_xml::parse(&xml).unwrap();
        let out = checker.check_document(&doc);
        let mut plain = PvChecker::new(&analysis);
        plain.set_memo_enabled(false);
        assert_eq!(out, plain.check_document(&doc));
        let stats = checker.memo_stats().unwrap();
        assert!(stats.entries <= 64, "capacity not honored: {stats:?}");
    }

    #[test]
    fn parallel_checking_with_shared_memo_stays_identical() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let mut plain = PvChecker::new(&analysis);
        plain.set_memo_enabled(false);
        let memoized = PvChecker::new(&analysis);
        for doc in [wide_doc(120, false), wide_doc(120, true)] {
            let expect = plain.check_document(&doc);
            for jobs in [1usize, 2, 8] {
                // Cold-ish and warm passes both must match.
                assert_eq!(memoized.check_document_parallel(&doc, jobs), expect, "jobs={jobs}");
                assert_eq!(memoized.check_document_parallel(&doc, jobs), expect, "jobs={jobs}");
            }
        }
    }
}
