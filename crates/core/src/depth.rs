//! Depth policies for the ECRecognizer (paper Section 4.3.1).
//!
//! The recognizer speculates about *elided* elements by nesting one
//! recognizer inside another (Figure 5, line 25). Each nesting level
//! corresponds to one application of `X → X̂` — one element of the valid
//! completion that is not present in the input. For **PV-strong recursive**
//! DTDs these chains can grow forever (Example 5 / Figure 7), so the paper
//! bounds them by the acceptable document depth `D`, arguing that real XML
//! depths are single-digit (citing the XML-web study \[12\]).
//!
//! For every other DTD class the chains follow strong edges, which form a
//! DAG; they terminate on their own and no bound is needed (this is the
//! algorithm of the earlier WebDB'04 paper \[11\]).

use pv_dtd::{DtdAnalysis, DtdClass};

/// Default elision bound for PV-strong recursive DTDs, comfortably above
/// the "one digit magnitude" depth of real-world documents the paper cites.
pub const DEFAULT_STRONG_DEPTH: u32 = 16;

/// How deep the recognizer may speculate about elided elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum DepthPolicy {
    /// Choose automatically: `Unbounded` unless the DTD is PV-strong
    /// recursive, in which case [`DEFAULT_STRONG_DEPTH`].
    #[default]
    Auto,
    /// Never create a nested recognizer beyond `D` levels. For PV-strong
    /// DTDs the answer is then "potentially valid within completions whose
    /// nesting exceeds the input's by at most `D`"; it is monotone in `D`.
    Bounded(u32),
    /// No limit. **Safe only for non-PV-strong DTDs** — selecting this for
    /// a PV-strong DTD falls back to [`DEFAULT_STRONG_DEPTH`] instead of
    /// looping forever (Example 5).
    Unbounded,
}


impl DepthPolicy {
    /// Resolves the policy into a concrete per-check budget for `analysis`.
    ///
    /// `u32::MAX` acts as "unbounded": for non-PV-strong DTDs chains are
    /// structurally finite (bounded by the strong-edge DAG's longest path),
    /// so the budget is never consumed meaningfully.
    pub fn resolve(self, analysis: &DtdAnalysis) -> u32 {
        let strong = analysis.rec.class == DtdClass::PvStrongRecursive;
        match self {
            DepthPolicy::Bounded(d) => d,
            DepthPolicy::Auto | DepthPolicy::Unbounded if strong => DEFAULT_STRONG_DEPTH,
            DepthPolicy::Auto | DepthPolicy::Unbounded => u32::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_dtd::builtin::BuiltinDtd;

    #[test]
    fn auto_is_unbounded_for_non_strong() {
        for b in [BuiltinDtd::Figure1, BuiltinDtd::XhtmlBasic, BuiltinDtd::Play] {
            assert_eq!(DepthPolicy::Auto.resolve(&b.analysis()), u32::MAX, "{}", b.name());
        }
    }

    #[test]
    fn auto_is_bounded_for_strong() {
        for b in [BuiltinDtd::T1, BuiltinDtd::T2, BuiltinDtd::Dissertation] {
            assert_eq!(
                DepthPolicy::Auto.resolve(&b.analysis()),
                DEFAULT_STRONG_DEPTH,
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn unbounded_refuses_to_loop_on_strong() {
        assert_eq!(
            DepthPolicy::Unbounded.resolve(&BuiltinDtd::T1.analysis()),
            DEFAULT_STRONG_DEPTH
        );
    }

    #[test]
    fn explicit_bound_wins() {
        assert_eq!(DepthPolicy::Bounded(3).resolve(&BuiltinDtd::T1.analysis()), 3);
        assert_eq!(DepthPolicy::Bounded(3).resolve(&BuiltinDtd::Figure1.analysis()), 3);
    }
}
