//! # pv-core — potential validity of document-centric XML documents
//!
//! The primary contribution of Iacob, Dekhtyar & Dekhtyar, *On Potential
//! Validity of Document-Centric XML Documents* (ICDE 2006): deciding, in
//! linear time, whether an in-progress XML document can still be completed
//! into a valid one using **markup insertions only**.
//!
//! ## The problem
//!
//! During document-centric editing (marking up pre-existing text), the
//! working document is almost never valid. Two very different situations
//! hide behind "invalid":
//!
//! 1. the encoding is merely **incomplete** — more tags will fix it;
//! 2. the encoding **contradicts** the DTD — no amount of additional markup
//!    can ever fix it.
//!
//! A document of the first kind is *potentially valid* (Definition 3:
//! `w ∈ D*(T, r)` iff some extension `ω ∈ Ext(w, T)` is valid). An editor
//! wants to keep the invariant "the buffer is always potentially valid" and
//! to check it **incrementally** after every edit.
//!
//! ## What this crate provides
//!
//! * [`token`] — the `δ_T` and `Δ_T` operators: XML documents to token
//!   strings over `{<x>, </x>, σ}` (Sections 3.1 and 4).
//! * [`dag`] — the per-element DAG model `DAG_x` built from PV-normalized
//!   content models (Section 4.2, Figure 4).
//! * [`recognizer`] — the **ECRecognizer** algorithm (Figure 5): a greedy,
//!   depth-bounded recognizer solving Element Content Potential Validity
//!   in `O(k·D)` per input symbol (Theorem 4).
//! * [`checker`] — whole-document potential validity (Problem PV) by
//!   running ECPV at every element node, with diagnostics pointing at the
//!   offending node and symbol.
//! * [`engine`] — the owned, `Arc`-shareable sibling of the checker for
//!   resident services: pre-compiled DAGs, a warm cross-request shape
//!   cache, and check entry points that dispatch onto a persistent
//!   [`pv_par::Pool`].
//! * [`memo`] — shape-memoized verdicts: child-symbol sequences are
//!   hash-consed into interned shapes and `(element, shape)` ECPV results
//!   are cached with their stats delta, so repetitive markup checks in
//!   amortized O(1) per node with outcomes bit-identical to the uncached
//!   checker.
//! * [`incremental`] — update-time checks for editors: O(1) character-data
//!   insertion (Proposition 3), free deletions and data updates
//!   (Theorem 2), and two-node checks for markup insertion.
//! * [`suggest`] — editor guidance: which symbols may come next at a
//!   position (the tag-palette query of the paper's xTagger editor \[10\]).
//! * [`depth`] — depth policies: `Unbounded` is proven safe for
//!   non-PV-strong DTDs (elision chains follow strong edges only); the
//!   paper's bound `D` applies to PV-strong DTDs (Section 4.3.1).
//!
//! ## Quick start
//!
//! ```
//! use pv_dtd::builtin::BuiltinDtd;
//! use pv_core::checker::PvChecker;
//!
//! let analysis = BuiltinDtd::Figure1.analysis();
//! let checker = PvChecker::new(&analysis);
//!
//! // Example 1 of the paper: `s` is potentially valid …
//! let s = pv_xml::parse(
//!     "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>",
//! ).unwrap();
//! assert!(checker.check_document(&s).is_potentially_valid());
//!
//! // … while `w` is not: the order b, e, c contradicts the DTD.
//! let w = pv_xml::parse(
//!     "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>",
//! ).unwrap();
//! assert!(!checker.check_document(&w).is_potentially_valid());
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod dag;
pub mod depth;
pub mod engine;
pub mod incremental;
pub mod memo;
pub mod recognizer;
pub mod stream;
pub mod suggest;
pub mod token;

pub use checker::{CheckScratch, PvChecker, PvOutcome, PvViolation, PvViolationKind, ScratchStash};
pub use engine::CheckEngine;
pub use dag::{DagNode, DagNodeKind, DagSet, ElementDag};
pub use depth::DepthPolicy;
pub use memo::{MemoStats, ShapeCache};
pub use recognizer::{EcRecognizer, RecognizerStats};
pub use stream::{StreamCheck, StreamChecker};
pub use token::{ChildSym, Tok, TokenError, Tokens};
