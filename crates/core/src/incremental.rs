//! Incremental potential-validity checks for editing operations
//! (paper Sections 3.2 and 4).
//!
//! For a document already known to be potentially valid, each editor
//! operation has a cheap dedicated check — this is the paper's payoff for
//! interactive editing:
//!
//! | operation                 | check                              | cost |
//! |---------------------------|------------------------------------|------|
//! | character-data update     | none needed (Theorem 2)            | O(1) |
//! | character-data deletion   | none needed (Theorem 2)            | O(1) |
//! | markup deletion           | none needed (Theorem 2)            | O(1) |
//! | character-data insertion  | `LT(x, #PCDATA)` (Proposition 3)   | O(1) |
//! | markup insertion          | ECPV twice: new node + its parent  | O(children) |
//! | element rename            | ECPV twice: node + parent          | O(children) |
//!
//! The functions here *decide* whether an operation preserves potential
//! validity; actually applying operations is `pv-xml`'s job, and the
//! transactional wrapper lives in `pv-editor`.

use crate::checker::{PvChecker, PvViolation};
use crate::recognizer::RecognizerStats;
use pv_xml::{Document, NodeId};

/// Outcome of an incremental check, with the work counters that back the
/// O(1) claims in the benchmark suite.
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// Violation introduced by the hypothetical/applied operation, if any.
    pub violation: Option<PvViolation>,
    /// Recognizer work performed (zero for the O(1) paths).
    pub stats: RecognizerStats,
}

impl IncrementalOutcome {
    fn ok() -> Self {
        IncrementalOutcome { violation: None, stats: RecognizerStats::default() }
    }

    /// `true` iff the operation preserves potential validity.
    #[inline]
    pub fn preserves_pv(&self) -> bool {
        self.violation.is_none()
    }
}

impl PvChecker<'_> {
    /// **Character-data update** of an existing text node: always preserves
    /// potential validity (Theorem 2). Constant time, no recognizer work.
    pub fn check_text_update(&self) -> IncrementalOutcome {
        IncrementalOutcome::ok()
    }

    /// **Markup deletion** (unwrapping an element): always preserves
    /// potential validity (Theorem 2). Constant time.
    ///
    /// Intuition: the deleted tags were part of some valid extension; the
    /// same extension re-inserts them.
    pub fn check_markup_deletion(&self) -> IncrementalOutcome {
        IncrementalOutcome::ok()
    }

    /// **Character-data insertion** as a (new) text child of `parent`.
    ///
    /// Proposition 3 claims `w' ∈ D*` iff `x ⇝ PCDATA` — an O(1) lookup.
    /// The biconditional is **exact for parents whose content model allows
    /// character data directly** (mixed, `(#PCDATA)`, `ANY` — the common
    /// document-centric case) and for rejections (`¬(x ⇝ PCDATA)` really
    /// is hopeless). For *element-content* parents, however, reachability
    /// is necessary but not sufficient: with `x → (c)`, `c → (#PCDATA)`
    /// and the document `<x><c/>text</x>`, `x ⇝ PCDATA` holds yet the σ
    /// after the explicit `<c/>` can never be wrapped into the single `c`
    /// slot. (Found by property testing; recorded in DESIGN.md.) For that
    /// case we fall back to one ECPV run over the parent's hypothetical
    /// child sequence — `O(children)`, still far cheaper than a document
    /// re-check.
    pub fn check_text_insertion(&self, doc: &Document, parent: NodeId) -> IncrementalOutcome {
        self.check_text_insertion_at(doc, parent, usize::MAX)
    }

    /// Position-aware variant of [`PvChecker::check_text_insertion`]:
    /// `index` is the child position the text node would take
    /// (`usize::MAX` appends).
    pub fn check_text_insertion_at(
        &self,
        doc: &Document,
        parent: NodeId,
        index: usize,
    ) -> IncrementalOutcome {
        let analysis = self.analysis();
        let Some(elem) = doc.name(parent).and_then(|n| analysis.id(n)) else {
            return IncrementalOutcome {
                violation: Some(PvViolation {
                    node: parent,
                    kind: crate::checker::PvViolationKind::UndeclaredElement {
                        name: doc.name(parent).unwrap_or("").to_owned(),
                    },
                }),
                stats: RecognizerStats::default(),
            };
        };
        let reject = || IncrementalOutcome {
            violation: Some(PvViolation {
                node: parent,
                kind: crate::checker::PvViolationKind::ContentRejected {
                    symbol: "σ".to_owned(),
                    index: 0,
                },
            }),
            stats: RecognizerStats::default(),
        };
        // O(1) fast paths (Proposition 3 where it is exact).
        if analysis.dtd.element(elem).content.allows_pcdata() {
            return IncrementalOutcome::ok();
        }
        if !analysis.reach.reaches_pcdata(elem) {
            return reject();
        }
        // Element-content parent: exact check is one ECPV on the
        // hypothetical child sequence with σ spliced in at `index`.
        let mut syms = match crate::token::Tokens::children(doc, parent, &analysis.dtd) {
            Ok(s) => s,
            Err(e) => {
                return IncrementalOutcome {
                    violation: Some(PvViolation {
                        node: e.node,
                        kind: crate::checker::PvViolationKind::UndeclaredElement { name: e.name },
                    }),
                    stats: RecognizerStats::default(),
                }
            }
        };
        // Map the child index to a symbol index: count symbols produced by
        // children before `index`. Splicing between/adjacent-to σ runs
        // merges, which can only help; insert conservatively and collapse.
        let child_tokens = doc.child_tokens(parent);
        let sym_pos = child_tokens
            .iter()
            .take(index.min(child_tokens.len()))
            .count()
            .min(syms.len());
        syms.insert(sym_pos, crate::token::ChildSym::Sigma);
        syms.dedup_by(|a, b| {
            *a == crate::token::ChildSym::Sigma && *b == crate::token::ChildSym::Sigma
        });
        let mut stats = RecognizerStats::default();
        let violation = self.check_symbols(elem, &syms, &mut stats).map(|(i, symbol)| {
            PvViolation {
                node: parent,
                kind: crate::checker::PvViolationKind::ContentRejected { symbol, index: i },
            }
        });
        IncrementalOutcome { violation, stats }
    }

    /// **Markup insertion**: after wrapping children of `parent` in a new
    /// element `node`, the paper reduces the re-check to *two* ECPV
    /// instances — the inserted node's content and the parent's updated
    /// child sequence (Section 4). Call this *after* applying the wrap.
    pub fn check_markup_insertion(
        &self,
        doc: &Document,
        node: NodeId,
        parent: NodeId,
    ) -> IncrementalOutcome {
        let mut stats = RecognizerStats::default();
        let violation = self
            .check_node(doc, node, &mut stats)
            .or_else(|| self.check_node(doc, parent, &mut stats));
        IncrementalOutcome { violation, stats }
    }

    /// **Element rename**: not PV-preserving in general; re-check the node
    /// and its parent (same shape as insertion). Renaming the *root* must
    /// additionally keep `root(w) = r` (Definition 3).
    pub fn check_rename(
        &self,
        doc: &Document,
        node: NodeId,
    ) -> IncrementalOutcome {
        let mut stats = RecognizerStats::default();
        if doc.parent(node).is_none() {
            let name = doc.name(node).unwrap_or("");
            if self.analysis().id(name) != Some(self.analysis().root) {
                return IncrementalOutcome {
                    violation: Some(PvViolation {
                        node,
                        kind: crate::checker::PvViolationKind::RootMismatch {
                            found: name.to_owned(),
                            expected: self
                                .analysis()
                                .name(self.analysis().root)
                                .to_owned(),
                        },
                    }),
                    stats,
                };
            }
        }
        let violation = self.check_node(doc, node, &mut stats).or_else(|| {
            doc.parent(node).and_then(|p| self.check_node(doc, p, &mut stats))
        });
        IncrementalOutcome { violation, stats }
    }
}

#[cfg(test)]
mod tests {
    
    use crate::checker::PvChecker;
    use pv_dtd::builtin::BuiltinDtd;

    #[test]
    fn text_update_and_deletions_are_free() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        assert!(checker.check_text_update().preserves_pv());
        assert!(checker.check_markup_deletion().preserves_pv());
        assert_eq!(checker.check_text_update().stats.node_visits, 0);
    }

    #[test]
    fn text_insertion_fast_paths_are_constant_time() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let doc = pv_xml::parse("<r><a><b/><c/><d><e/></d></a></r>").unwrap();
        let a = doc.children(doc.root())[0];
        let d = doc.children(a)[2];
        let e = doc.children(d)[0];
        // d is mixed content: O(1) accept without running the recognizer.
        let out = checker.check_text_insertion(&doc, d);
        assert!(out.preserves_pv());
        assert_eq!(out.stats.node_visits, 0, "mixed parents take the O(1) path");
        // e is EMPTY: O(1) reject (σ unreachable).
        let out = checker.check_text_insertion(&doc, e);
        assert!(!out.preserves_pv());
        assert_eq!(out.stats.node_visits, 0, "unreachable σ takes the O(1) path");
    }

    #[test]
    fn text_insertion_element_content_needs_exact_check() {
        // The refinement of Proposition 3 found by property testing: for
        // element-content parents, σ-reachability is necessary but NOT
        // sufficient. Children of a are (b, c, d); appending σ after d can
        // never be fixed, even though a ⇝ PCDATA.
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let doc = pv_xml::parse("<r><a><b/><c/><d/></a></r>").unwrap();
        let a = doc.children(doc.root())[0];
        assert!(analysis.reach.reaches_pcdata(analysis.id("a").unwrap()));
        let out = checker.check_text_insertion_at(&doc, a, usize::MAX);
        assert!(!out.preserves_pv(), "σ after <d> is hopeless despite reachability");
        assert!(out.stats.node_visits > 0, "falls back to one ECPV run");
        // With the d slot still free, appending σ is fine (wrap it in d).
        let doc2 = pv_xml::parse("<r><a><b/><c/></a></r>").unwrap();
        let a2 = doc2.children(doc2.root())[0];
        assert!(checker.check_text_insertion_at(&doc2, a2, usize::MAX).preserves_pv());
        // …but prepending σ before the explicit b is still hopeless.
        assert!(!checker.check_text_insertion_at(&doc2, a2, 0).preserves_pv());
        // The minimal counterexample to Proposition 3's biconditional:
        // x → (c), c → (#PCDATA); σ next to an explicit <c/> never fits,
        // yet x ⇝ PCDATA.
        let tiny_analysis =
            pv_dtd::DtdAnalysis::parse("<!ELEMENT x (c)><!ELEMENT c (#PCDATA)>", "x").unwrap();
        let tiny = PvChecker::new(&tiny_analysis);
        assert!(tiny_analysis.reach.reaches_pcdata(tiny_analysis.id("x").unwrap()));
        let tdoc = pv_xml::parse("<x><c/></x>").unwrap();
        let x = tdoc.root();
        assert!(!tiny.check_text_insertion_at(&tdoc, x, usize::MAX).preserves_pv());
        assert!(!tiny.check_text_insertion_at(&tdoc, x, 0).preserves_pv());
        // On an empty <x/> the σ can be wrapped into the single c slot.
        let empty = pv_xml::parse("<x/>").unwrap();
        assert!(tiny.check_text_insertion_at(&empty, empty.root(), 0).preserves_pv());
    }

    #[test]
    fn markup_insertion_rechecks_two_nodes() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        // Start from the paper's potentially valid s.
        let mut doc = pv_xml::parse(
            "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>",
        )
        .unwrap();
        let a = doc.children(doc.root())[0];
        // Insert the <d> around " dog<e/>" (Figure 3's completion step).
        let d = doc.wrap_children(a, 2..4, "d").unwrap();
        let out = checker.check_markup_insertion(&doc, d, a);
        assert!(out.preserves_pv());
        assert!(out.stats.symbols > 0);
    }

    #[test]
    fn bad_markup_insertion_detected() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let mut doc = pv_xml::parse("<r><a><b/><c/><d/></a></r>").unwrap();
        let a = doc.children(doc.root())[0];
        // Wrapping <c/> in <e> is hopeless: e must be EMPTY.
        let e = doc.wrap_children(a, 1..2, "e").unwrap();
        let out = checker.check_markup_insertion(&doc, e, a);
        assert!(!out.preserves_pv());
    }

    #[test]
    fn insertion_violating_parent_detected() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let mut doc = pv_xml::parse("<r><a><b/><c/><d/></a></r>").unwrap();
        let a = doc.children(doc.root())[0];
        // Wrapping everything under <a> in another <a> breaks <a>'s own
        // content model position under… no wait — r is (a+), wrapping a's
        // children in <f> breaks a's model ((b?,(c|f),d) has no f-first
        // alternative that also keeps b before it inside f).
        let f = doc.wrap_children(a, 0..3, "f").unwrap();
        let out = checker.check_markup_insertion(&doc, f, a);
        assert!(!out.preserves_pv(), "f cannot contain (b, c, d)");
    }

    #[test]
    fn rename_rechecked() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let mut doc = pv_xml::parse("<r><a><b/><c/><d/></a></r>").unwrap();
        let a = doc.children(doc.root())[0];
        let c = doc.children(a)[1];
        // Renaming <c> to <b> yields children b, b, d: the second b can
        // fit nowhere after the first (nothing after b? reaches b).
        doc.rename_element(c, "b").unwrap();
        assert!(!checker.check_rename(&doc, c).preserves_pv());
        // Renaming it back restores potential validity.
        doc.rename_element(c, "c").unwrap();
        assert!(checker.check_rename(&doc, c).preserves_pv());
    }

    #[test]
    fn rename_to_reachable_position_is_fine() {
        // Renaming <b> to <e> keeps the document potentially valid:
        // e can sink into an elided b → d → e chain.
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let mut doc = pv_xml::parse("<r><a><b/><c/><d/></a></r>").unwrap();
        let a = doc.children(doc.root())[0];
        let b = doc.children(a)[0];
        doc.rename_element(b, "e").unwrap();
        assert!(checker.check_rename(&doc, b).preserves_pv());
    }
}
