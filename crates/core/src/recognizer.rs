//! The **ECRecognizer** algorithm (paper Figure 5): greedy, depth-bounded
//! recognition of Element Content Potential Validity (Problem ECPV).
//!
//! ## How it works
//!
//! For an element `e`, the recognizer walks `DAG_e` keeping an ordered
//! *active node list*. For each input symbol `x` (a child element or a σ
//! character-data run):
//!
//! * a **star-group** node matches `x` if `x` is a member or is reachable
//!   from a member (Proposition 2); the node stays active — groups absorb
//!   arbitrarily many symbols;
//! * a **simple** node `n` for element `y` matches if `x = y` (the node is
//!   consumed and its DAG successors become active with priority), or if
//!   `x` is reachable from `y` — in which case a **nested recognizer** for
//!   `y` is spawned (Figure 5 line 25): this speculates that `<y>` tags are
//!   *elided* and `x` sits inside them (grammar step `Y → Ŷ`). The nested
//!   recognizer is cached on the node and drains further symbols until its
//!   own active list empties ("its last element was matched", Example 4),
//!   at which point the node advances;
//! * a node matching nothing is removed and its successors are examined
//!   *for the same symbol* (the greedy skip — sound because every element
//!   is nullable under the PV grammar, Theorem 3, so a skipped position can
//!   always be filled by later markup insertion).
//!
//! Acceptance: every input symbol must be matched by some active node; the
//! input may end at any time (all remaining positions are nullable).
//!
//! ## Depth bound
//!
//! Nested recognizers may chain (elided element inside elided element …).
//! The chain follows *strong edges* only, so for non-PV-strong DTDs it
//! terminates structurally; for PV-strong DTDs (Example 5's
//! `a → (a | b*)`) an explicit budget caps it — the paper's document-depth
//! bound `D`, threaded through constructor calls as `depth − 1`.
//!
//! ## The cost-ordered speculation agenda
//!
//! The paper's pseudocode explores every elision hypothesis recursively,
//! which is exponential in the depth bound on densely recursive DTDs. We
//! instead process each input symbol as one **round** over the whole
//! nested-recognizer tree, in three phases:
//!
//! 1. **begin** — every recognizer in the tree drains its plain FIFO work —
//!    group/PCDATA/equality matches and skip cascades, all free — and
//!    *parks* each would-be elision as a request priced `1 + md(y, x)`
//!    (the minimal-elision distance, see [`crate::dag::DagSet`]). A
//!    parked entry eagerly explores its **skip branch** too: its DAG
//!    successors are examined for the same symbol, so an alternative that
//!    only becomes visible past a nullable position competes in the same
//!    round instead of hiding behind a failure cascade.
//! 2. **agenda** — a single driver loop repeatedly locates the cheapest
//!    parked request **anywhere in the tree** — committed nested
//!    recognizers hold no privilege; their internal requests are priced
//!    like everyone else's — and opens it, spending one unit of the
//!    shared per-symbol budget ([`EcRecognizer::SPEC_BUDGET_PER_SYMBOL`]).
//!    Opening a request may park cheaper requests inside the new nested
//!    recognizer; those are then globally cheapest and complete first, so
//!    the md-optimal elision chain can never be starved by a costlier
//!    sibling or by an already-committed subtree.
//! 3. **finish** — resolution runs bottom-up: a nested recognizer that
//!    matched always offers its holder's successors for the next symbol
//!    (the elided element may end at any point — every position inside
//!    it is nullable; Example 4's empty-list rule is the special case
//!    where continuing is impossible) *and* keeps the holder alive while
//!    it can continue; one that did not match simply evaporates — its
//!    skip branch already ran in phase 1. Requests still parked when the
//!    budget ran out are dropped the same way and counted in
//!    [`RecognizerStats::specs_denied`] (`0` certifies the round was
//!    exact, i.e. budget-independent).
//!
//! A fresh simple node `n` for `y` that could *both* equality-match `x = y`
//! and absorb it inside an elided `<y>` does not commit to either: the
//! equality branch is taken in phase 1 at cost 0 (the hot path stays
//! FIFO-fast) and the elision branch is parked like any other request, so
//! both parse states survive the round. Exhaustive bounded sweeps against
//! the exact Earley oracle (`tests/completeness.rs`) verify that the
//! agenda leaves no reachable divergence.
//!
//! ## Deviation from the paper's pseudocode
//!
//! Figure 5 checks `element(n) = x` (line 29) even when the node's cached
//! nested recognizer has already consumed content. That would let one DAG
//! position account for both an elided `<y>…</y>` *and* an explicit `<y>`,
//! accepting non-PV inputs (e.g. children `c, y` against model `(y)` with
//! `y → (c, c)`). We perform the equality check only while no content has
//! been committed into the node's nested recognizer; differential tests
//! against the Earley baseline confirm the fix.

use crate::dag::{DagNodeId, DagNodeKind, DagSet, ElementDag};
use crate::token::ChildSym;
use pv_dtd::{DtdAnalysis, ElemId, GroupSet, Reachability};

/// Shared immutable context for a family of recognizers: the per-element
/// DAGs, the reachability lookup table, and (optionally) a statically
/// certified speculation budget.
#[derive(Clone, Copy)]
pub struct RecCtx<'a> {
    /// All element DAGs.
    pub dags: &'a DagSet,
    /// Reachability closure `LT`.
    pub reach: &'a Reachability,
    /// Per-symbol speculation budget: `Some` when a static certificate
    /// (or an explicit override) fixed it, `None` for the default
    /// `max(32, (m+1)²)` formula.
    budget: Option<u32>,
}

impl<'a> RecCtx<'a> {
    /// Builds a context from a compiled DTD and its DAG set, using the
    /// default budget formula.
    pub fn new(analysis: &'a DtdAnalysis, dags: &'a DagSet) -> Self {
        RecCtx { dags, reach: &analysis.reach, budget: None }
    }

    /// Builds a context with a fixed per-symbol speculation budget —
    /// normally one certified by [`pv_dtd::budget::certify`]. Soundness
    /// contract: a certified budget parks the same requests in the same
    /// agenda order as the default, so outcomes stay bit-identical.
    pub fn with_budget(analysis: &'a DtdAnalysis, dags: &'a DagSet, budget: u32) -> Self {
        RecCtx { dags, reach: &analysis.reach, budget: Some(budget) }
    }

    /// The per-symbol speculation budget this context runs with.
    #[inline]
    pub fn spec_budget(&self) -> u32 {
        match self.budget {
            Some(b) => b,
            None => pv_dtd::budget::full_budget(self.reach.element_count()),
        }
    }

    /// Proposition 2's star-group test: membership or reachability.
    #[inline]
    fn group_matches(&self, g: &GroupSet, x: ChildSym) -> bool {
        match x {
            ChildSym::Elem(e) => {
                g.contains(e) || g.elems.iter().any(|&y| self.reach.reaches(y, e))
            }
            ChildSym::Sigma => {
                g.pcdata || g.elems.iter().any(|&y| self.reach.reaches_pcdata(y))
            }
        }
    }
}

/// Work counters, aggregated across nested recognizers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecognizerStats {
    /// Input symbols processed (top-level only).
    pub symbols: u64,
    /// Active-list entries examined (including cascades and nested work).
    pub node_visits: u64,
    /// Nested recognizers created (Figure 5 line 25 executions).
    pub subs_created: u64,
    /// Speculation requests still parked when the per-symbol budget ran
    /// out (dropped unopened). `0` certifies that every round was exact:
    /// the verdict is what an unbounded-budget run would have produced.
    pub specs_denied: u64,
}

impl RecognizerStats {
    /// Accumulates another counter set into this one. Addition is
    /// commutative and associative, so merging per-node stats in document
    /// order reproduces the sequential checker's totals exactly — the
    /// property the parallel checker's deterministic reduction relies on.
    pub fn merge(&mut self, other: &RecognizerStats) {
        self.symbols += other.symbols;
        self.node_visits += other.node_visits;
        self.subs_created += other.subs_created;
        self.specs_denied += other.specs_denied;
    }
}

/// Lifetime-free heap buffers recovered from a retiring recognizer, so a
/// persistent pool worker can carry warmed capacities **across** parallel
/// regions (a [`EcRecognizer`] itself borrows the checker's DAGs and
/// cannot outlive one region; its plain-data buffers can).
///
/// Only the buffers whose element types carry no borrow are recoverable:
/// the current/next generation bitmaps and the two speculation-round
/// queues. The entry lists hold in-progress nested recognizers (borrowed)
/// and are rebuilt per region; they reach steady-state capacity within
/// the first node or two, so the loss is noise.
#[derive(Default)]
pub struct RecBuffers {
    cur: Vec<bool>,
    nxt: Vec<bool>,
    pending: Vec<(u32, DagNodeId)>,
    parked_round: Vec<(ElemId, DagNodeId)>,
}

/// One active DAG position, optionally carrying an in-progress nested
/// recognizer for an elided element.
struct Entry<'a> {
    node: DagNodeId,
    sub: Option<Box<EcRecognizer<'a>>>,
}

impl Entry<'_> {
    fn fresh(node: DagNodeId) -> Self {
        Entry { node, sub: None }
    }
}

/// The element-content recognizer (one instance per ECPV problem).
pub struct EcRecognizer<'a> {
    ctx: RecCtx<'a>,
    dag: &'a ElementDag,
    /// The element whose content this recognizer checks (indexes the
    /// shared md/cascade-hint tables).
    elem: ElemId,
    /// Remaining elision budget (`depth` in Figure 5).
    depth: u32,
    active: Vec<Entry<'a>>,
    /// Scratch: "a fresh entry for node i exists in the current generation"
    /// (entries examinable for the symbol being processed).
    cur: Vec<bool>,
    /// Scratch: same, for the next generation (successors of consumed
    /// nodes — available only from the following symbol on).
    nxt: Vec<bool>,
    /// Scratch for one `validate` round: entries consumed this symbol whose
    /// successors activate for the next one. Kept as a field (emptied
    /// between rounds) so the steady-state hot path never allocates.
    advanced: Vec<Entry<'a>>,
    /// Scratch for one `validate` round: entries that matched and stay
    /// active (star-groups, partial subs).
    stayed: Vec<Entry<'a>>,
    /// Round state: parked speculation requests `(1 + md(y, x), node)`,
    /// waiting on the global agenda. An entry parks at most one request
    /// per round; the skip branch of a parked node was already explored
    /// when it parked.
    pending: Vec<(u32, DagNodeId)>,
    /// Round state: entries whose nested recognizer has begun the round
    /// but not yet finished it (it still has parked requests somewhere in
    /// its subtree); resolved bottom-up in `finish_round`.
    holders: Vec<Entry<'a>>,
    /// Round state: every request parked this round (including ones the
    /// agenda has already opened), for dominance pruning — a same-element
    /// request downstream of one of these is redundant (see `park`).
    parked_round: Vec<(ElemId, DagNodeId)>,
    /// Round state: some entry of *this* recognizer matched the symbol.
    matched: bool,
    /// Round state: the agenda view of this subtree — the cheapest
    /// parked request among `pending` and (each +1 per nesting level)
    /// the `holders` subtrees, `u32::MAX` when none. Maintained
    /// incrementally so the driver never re-walks the tree.
    sub_min: u32,
}

impl<'a> EcRecognizer<'a> {
    /// Creates a recognizer for the content of element `e` with the given
    /// elision budget (Figure 5, constructor).
    pub fn new(ctx: RecCtx<'a>, e: ElemId, depth: u32) -> Self {
        let dag = ctx.dags.dag(e);
        let mut rec = EcRecognizer {
            ctx,
            dag,
            elem: e,
            depth,
            active: Vec::with_capacity(dag.starts.len()),
            cur: Vec::new(),
            nxt: Vec::new(),
            advanced: Vec::new(),
            stayed: Vec::new(),
            pending: Vec::new(),
            holders: Vec::new(),
            parked_round: Vec::new(),
            matched: false,
            sub_min: u32::MAX,
        };
        rec.reset(e, depth);
        rec
    }

    /// Re-arms this recognizer for a fresh ECPV instance over element `e`
    /// with the given elision budget, **reusing every internal buffer**.
    /// After `reset` the recognizer is observationally identical to a
    /// freshly constructed one ([`EcRecognizer::new`] is implemented on top
    /// of it); the checker's per-document scratch
    /// ([`crate::checker::CheckScratch`]) relies on this to keep the
    /// per-node hot path allocation-free.
    pub fn reset(&mut self, e: ElemId, depth: u32) {
        let dag = self.ctx.dags.dag(e);
        self.dag = dag;
        self.elem = e;
        self.depth = depth;
        self.active.clear();
        self.advanced.clear();
        self.stayed.clear();
        self.pending.clear();
        self.holders.clear();
        self.parked_round.clear();
        self.matched = false;
        self.sub_min = u32::MAX;
        self.cur.clear();
        self.cur.resize(dag.len(), false);
        self.nxt.clear();
        self.nxt.resize(dag.len(), false);
        for &s in &dag.starts {
            if !self.cur[s as usize] {
                self.cur[s as usize] = true;
                self.active.push(Entry::fresh(s));
            }
        }
    }

    /// [`EcRecognizer::new`] seeded with recycled buffers (see
    /// [`RecBuffers`]); observationally identical to a fresh recognizer.
    pub fn with_buffers(ctx: RecCtx<'a>, e: ElemId, depth: u32, bufs: RecBuffers) -> Self {
        let mut rec = Self::new(ctx, e, depth);
        let RecBuffers { cur, nxt, pending, parked_round } = bufs;
        // Adopt whichever recycled buffer has more capacity than the
        // fresh one, then re-arm from scratch.
        if cur.capacity() > rec.cur.capacity() {
            rec.cur = cur;
        }
        if nxt.capacity() > rec.nxt.capacity() {
            rec.nxt = nxt;
        }
        rec.pending = pending;
        rec.parked_round = parked_round;
        rec.reset(e, depth);
        rec
    }

    /// Retires this recognizer, handing back its lifetime-free buffers
    /// for a later [`EcRecognizer::with_buffers`].
    pub fn into_buffers(mut self) -> RecBuffers {
        self.pending.clear();
        self.parked_round.clear();
        RecBuffers {
            cur: std::mem::take(&mut self.cur),
            nxt: std::mem::take(&mut self.nxt),
            pending: std::mem::take(&mut self.pending),
            parked_round: std::mem::take(&mut self.parked_round),
        }
    }

    /// `true` once every DAG position has been consumed or skipped — the
    /// elided element's content cannot take further symbols, so the parent
    /// may advance past it (Example 4: "f is removed from the active node
    /// set as its last element was matched").
    #[inline]
    pub fn is_complete(&self) -> bool {
        !self.dag.is_any && self.active.is_empty()
    }

    /// Baseline for the total speculations allowed while processing one
    /// input symbol, shared across the whole nested-recognizer tree.
    /// Tracking *every* speculative alternative is exponential in the
    /// depth budget on densely recursive DTDs (a blow-up the paper's
    /// pseudocode shares); the shared budget keeps per-symbol work at
    /// `O(BUDGET · k)` while retaining enough breadth that the exhaustive
    /// bounded sweeps against the exact Earley oracle find no divergence.
    /// The effective budget is `max(SPEC_BUDGET_PER_SYMBOL, (k + 1)²)`,
    /// echoing Theorem 4's `O(k · D)` per-symbol work bound: every finite
    /// md value is `< k`, so the globally cheapest elision chain (which
    /// the agenda opens before anything costlier, wherever in the
    /// nested-recognizer tree it lives) always fits, and the quadratic
    /// headroom covers the constant-rate side requests that accompany a
    /// full-depth chain — braided interconnects, recursion re-entries,
    /// clone positions (see `corpus::recursive`). The budget is a
    /// worst-case guard, not a steady cost: rounds open only what the
    /// agenda actually holds, and rounds that would have needed more are
    /// flagged via [`RecognizerStats::specs_denied`] (`0` over a corpus
    /// certifies every verdict is budget-independent).
    pub const SPEC_BUDGET_PER_SYMBOL: u32 = pv_dtd::budget::SPEC_FLOOR;

    /// Figure 5's `validate(x)`: feeds one symbol, returns `true` iff the
    /// content so far is still potentially valid.
    ///
    /// One symbol is one **round** over the whole nested-recognizer tree
    /// (see the module docs): FIFO work first, then the driver loop below
    /// opens parked speculation requests strictly cheapest-first across
    /// the entire tree until the agenda empties or the budget runs out,
    /// then resolution runs bottom-up.
    pub fn validate(&mut self, x: ChildSym, stats: &mut RecognizerStats) -> bool {
        // Every finite md value is < k, so k + 1 covers the globally
        // cheapest elision chain; (k + 1)² additionally covers the
        // side requests accompanying each chain level (see const docs).
        // Contexts carrying a static certificate substitute their proven
        // constant here (same parks, same order — see pv_dtd::budget).
        let mut budget = self.ctx.spec_budget();
        if self.begin_round(x, stats) {
            return self.matched;
        }
        self.drive(x, stats, &mut budget, u32::MAX);
        self.finish_round(stats)
    }

    /// Phase 1: drain this recognizer's FIFO work for symbol `x`.
    ///
    /// Returns `true` when the round is already **done**: nothing in this
    /// subtree parked a request, so the active list has been rebuilt
    /// inline and `matched` is final — the common case, costing exactly
    /// one pass. Returns `false` when requests were parked (here or in a
    /// committed subtree): resolution then waits on the agenda driver and
    /// [`EcRecognizer::finish_round`].
    fn begin_round(&mut self, x: ChildSym, stats: &mut RecognizerStats) -> bool {
        debug_assert!(self.pending.is_empty() && self.holders.is_empty());
        self.matched = false;
        self.sub_min = u32::MAX;
        if self.dag.is_any {
            // ANY content absorbs every declared symbol (paper Section 4).
            self.matched = true;
            return true;
        }
        // The round buffers are fields so their capacity survives across
        // symbols and nodes (allocation-free steady state); they are taken
        // locally for the round and rotated back at the end.
        let mut work = std::mem::take(&mut self.active);
        let mut advanced = std::mem::take(&mut self.advanced);
        let mut stayed = std::mem::take(&mut self.stayed);
        // Reset generation flags: `cur` marks fresh (sub-less) entries
        // examinable for this symbol, `nxt` marks fresh entries created for
        // the next symbol. Keeping the generations separate is essential:
        // a node consumed by a cascading skip in this round must not
        // suppress the same node arriving fresh as an advance successor.
        self.cur.fill(false);
        self.nxt.fill(false);
        for e in &work {
            if e.sub.is_none() {
                self.cur[e.node as usize] = true;
            }
        }
        let xcol = match x {
            ChildSym::Elem(e) => self.ctx.dags.col_of_elem(e),
            ChildSym::Sigma => self.ctx.dags.col_sigma(),
        };
        // pop() consumes from the back; reverse so the initial entries are
        // scanned front-to-back in their original order. Skip cascades
        // push onto the back (DFS order), exactly as before.
        work.reverse();
        while let Some(mut entry) = work.pop() {
            stats.node_visits += 1;
            if let Some(sub) = &mut entry.sub {
                // A committed nested recognizer: content has already been
                // absorbed inside the elided element, so this entry never
                // equality-matches again (deviation, module docs). Its
                // round begins now; if nothing in its subtree needs the
                // agenda it resolves inline — the hot path.
                if sub.begin_round(x, stats) {
                    if sub.matched {
                        self.matched = true;
                        // The elided element may end right here — every
                        // position still active inside it is nullable
                        // (Theorem 3) — so the holder always offers its
                        // successors for the next symbol, and *also*
                        // stays when the nested recognizer can continue
                        // (both parse states are live; Example 4's
                        // empty-list rule is the special case where
                        // continuing is impossible).
                        self.advance(entry.node, &mut advanced);
                        if !sub.is_complete() {
                            stayed.push(entry);
                        }
                    } else {
                        self.cascade_live(entry.node, xcol, None, &mut work);
                    }
                } else {
                    // Requests parked deeper in the subtree: resolution
                    // waits for the agenda. Explore the skip branch
                    // eagerly — if the subtree ultimately fails, its
                    // successors have already competed for this symbol.
                    self.cascade_live(entry.node, xcol, None, &mut work);
                    if let Some(sub) = &entry.sub {
                        self.sub_min = self.sub_min.min(sub.sub_min.saturating_add(1));
                    }
                    self.holders.push(entry);
                }
                continue;
            }
            match &self.dag.node(entry.node).kind {
                DagNodeKind::Group(g) => {
                    if self.ctx.group_matches(g, x) {
                        self.matched = true;
                        stayed.push(entry);
                    } else {
                        self.cur[entry.node as usize] = false;
                        self.cascade_live(entry.node, xcol, None, &mut work);
                    }
                }
                DagNodeKind::Pcdata => {
                    self.cur[entry.node as usize] = false;
                    if x == ChildSym::Sigma {
                        // PCDATA derives a single σ; runs are pre-collapsed.
                        self.matched = true;
                        self.advance(entry.node, &mut advanced);
                    } else {
                        self.cascade_live(entry.node, xcol, None, &mut work);
                    }
                }
                DagNodeKind::Simple(y) => {
                    let y = *y;
                    // Elision gate (Figure 5 lines 23–28): a fresh nested
                    // recognizer for y can absorb x iff md(y, x) < depth,
                    // an O(1) probe-table test.
                    let need = match x {
                        ChildSym::Elem(e) => self.ctx.dags.min_elisions(y, e),
                        ChildSym::Sigma => self.ctx.dags.min_elisions_sigma(y),
                    };
                    let speculative = need != u32::MAX && need < self.depth;
                    if x == ChildSym::Elem(y) {
                        // Equality branch at cost 0: the hot path stays
                        // FIFO-fast. If elision is also possible the entry
                        // *branches* — the elision hypothesis is parked as
                        // an agenda request instead of pre-empting the
                        // equality match (gap b of the completeness audit).
                        self.matched = true;
                        self.cur[entry.node as usize] = false;
                        self.advance(entry.node, &mut advanced);
                        if speculative {
                            self.park(need + 1, entry.node, y, xcol, &mut work);
                        }
                    } else if speculative {
                        self.park(need + 1, entry.node, y, xcol, &mut work);
                    } else {
                        self.cur[entry.node as usize] = false;
                        self.cascade_live(entry.node, xcol, None, &mut work);
                    }
                }
            }
        }
        if self.sub_min == u32::MAX {
            // Nothing parked anywhere below: the round is conclusive, so
            // rebuild the active list in the same pass (the hot path —
            // no agenda, no deferred resolution).
            self.merge_round(advanced, stayed, work);
            return true;
        }
        self.advanced = advanced;
        self.stayed = stayed;
        self.active = work; // drained; keeps its capacity for rotation
        false
    }

    /// Rebuilds the active list from a round's `advanced` + `stayed`
    /// output (greedy priority: freshly advanced positions first, paper
    /// line 32), merging identical *fresh* duplicates; sub-carrying
    /// entries are distinct parse states and always kept. `drained` is
    /// the spent work stack, rotated in as the next round's scratch.
    fn merge_round(
        &mut self,
        mut advanced: Vec<Entry<'a>>,
        mut stayed: Vec<Entry<'a>>,
        drained: Vec<Entry<'a>>,
    ) {
        advanced.append(&mut stayed);
        self.cur.fill(false);
        advanced.retain(|e| {
            if e.sub.is_some() {
                return true;
            }
            let seen = self.cur[e.node as usize];
            self.cur[e.node as usize] = true;
            !seen
        });
        self.stayed = stayed;
        self.advanced = drained;
        self.active = advanced;
    }

    /// Parks one speculation request for the agenda and eagerly explores
    /// the node's skip branch (successors compete for the same symbol —
    /// sound because every position is nullable, Theorem 3).
    ///
    /// **Dominance pruning:** a request for element `y` at a position
    /// reachable from an already-parked same-element request is dropped.
    /// The two nested recognizers would be identical (same element, same
    /// depth, same first symbol), and every position between the earlier
    /// node and this one is skippable, so any accepting run through the
    /// later state maps to one through the earlier — the prune loses no
    /// acceptance and keeps long optional chains (`(t?, t?, …)`) from
    /// parking one request per slot for every symbol.
    fn park(
        &mut self,
        key: u32,
        node: DagNodeId,
        y: ElemId,
        xcol: u32,
        work: &mut Vec<Entry<'a>>,
    ) {
        let dominated = self
            .parked_round
            .iter()
            .any(|&(e, p)| e == y && (p == node || self.dag.follows(p, node)));
        if !dominated {
            self.parked_round.push((y, node));
            self.pending.push((key, node));
            self.sub_min = self.sub_min.min(key);
        }
        // The skip branch: successors this request dominates are pruned
        // by the hint table; everything else competes for this symbol.
        self.cascade_live(node, xcol, Some(y), work);
    }

    /// [`EcRecognizer::cascade`] guarded by the precomputed hint table:
    /// the walk is skipped when nothing in `node`'s forward closure can
    /// react to the symbol (column `xcol`) — or when the only possible
    /// reactions are elision requests for `dominator`, which dominance
    /// pruning would discard anyway. Long optional tails cost O(1) per
    /// symbol instead of a full walk.
    fn cascade_live(
        &mut self,
        node: DagNodeId,
        xcol: u32,
        dominator: Option<ElemId>,
        work: &mut Vec<Entry<'a>>,
    ) {
        if !self.ctx.dags.cascade_dead(self.elem, node, xcol, dominator) {
            self.cascade(node, work);
        }
    }

    /// Pushes `node`'s DAG successors as fresh same-symbol work (the
    /// cascading skip), deduplicated within the current generation.
    fn cascade(&mut self, node: DagNodeId, work: &mut Vec<Entry<'a>>) {
        let dag = self.dag;
        for &s in &dag.node(node).succs {
            if !self.cur[s as usize] {
                self.cur[s as usize] = true;
                work.push(Entry::fresh(s));
            }
        }
    }

    /// Activates `node`'s DAG successors for the *next* symbol (the node
    /// was consumed), deduplicated within the next generation.
    fn advance(&mut self, node: DagNodeId, advanced: &mut Vec<Entry<'a>>) {
        let dag = self.dag;
        for &s in &dag.node(node).succs {
            if !self.nxt[s as usize] {
                self.nxt[s as usize] = true;
                advanced.push(Entry::fresh(s));
            }
        }
    }

    /// Recomputes `sub_min` — the cheapest parked request anywhere in
    /// this subtree (`u32::MAX` = none), priced from this recognizer's
    /// vantage point: each nesting level adds 1, so a request's global
    /// price is its **accumulated elision cost** — elided ancestors
    /// already below the round's root plus `1 + md(y, x)` for the chain
    /// it would open. The agenda therefore orders hypotheses by the total
    /// number of elements the completion must insert, not merely by the
    /// local md distance — without the nesting surcharge, cheap-looking
    /// requests deep inside yesterday's speculation towers would flood
    /// the budget ahead of a shallow chain the document actually needs.
    /// Called after a `drive` step mutated this level; holders' caches
    /// are already correct bottom-up.
    fn refresh_sub_min(&mut self) {
        let mut min =
            self.pending.iter().map(|&(k, _)| k).min().unwrap_or(u32::MAX);
        for h in &self.holders {
            if let Some(sub) = &h.sub {
                min = min.min(sub.sub_min.saturating_add(1));
            }
        }
        self.sub_min = min;
    }

    /// Phase 2: the agenda driver. Opens parked requests in this subtree
    /// strictly cheapest-first (accumulated cost, see `sub_min`) for as
    /// long as the subtree's cheapest request is no costlier than `bound`
    /// — the best alternative anywhere *else* in the tree — and budget
    /// remains. Recursing with the runner-up as the child's bound yields
    /// exactly the global cheapest-first order without re-descending from
    /// the round root for every request; ties prefer the shallower
    /// request, then parking order — deterministic, which the memo-replay
    /// and parallel bit-identity guarantees rely on.
    fn drive(
        &mut self,
        x: ChildSym,
        stats: &mut RecognizerStats,
        budget: &mut u32,
        bound: u32,
    ) {
        while *budget > 0 {
            // Cheapest own request and runner-up among the rest.
            let mut own: Option<(usize, u32)> = None;
            let mut own2 = u32::MAX;
            for (i, &(k, _)) in self.pending.iter().enumerate() {
                match own {
                    Some((_, kb)) if kb <= k => own2 = own2.min(k),
                    _ => {
                        if let Some((_, kb)) = own {
                            own2 = own2.min(kb);
                        }
                        own = Some((i, k));
                    }
                }
            }
            // Cheapest holder subtree (+1 per nesting level) and runner-up.
            let mut deep: Option<(usize, u32)> = None;
            let mut deep2 = u32::MAX;
            for (i, h) in self.holders.iter().enumerate() {
                let k = h
                    .sub
                    .as_ref()
                    .map_or(u32::MAX, |s| s.sub_min.saturating_add(1));
                match deep {
                    Some((_, kb)) if kb <= k => deep2 = deep2.min(k),
                    _ => {
                        if let Some((_, kb)) = deep {
                            deep2 = deep2.min(kb);
                        }
                        deep = Some((i, k));
                    }
                }
            }
            let own_k = own.map_or(u32::MAX, |(_, k)| k);
            let deep_k = deep.map_or(u32::MAX, |(_, k)| k);
            let best = own_k.min(deep_k);
            if best == u32::MAX || best > bound {
                break; // agenda empty, or something elsewhere is cheaper
            }
            if own_k <= deep_k {
                let (i, _) = own.unwrap();
                // Everything the opened subtree must beat to keep going.
                let runner = own2.min(deep_k).min(bound);
                self.open_request(i, x, stats, budget, runner);
            } else {
                let (i, _) = deep.unwrap();
                let runner = deep2.min(own_k).min(bound);
                if let Some(sub) = &mut self.holders[i].sub {
                    sub.drive(x, stats, budget, runner.saturating_sub(1));
                }
            }
        }
        self.refresh_sub_min();
    }

    /// Opens the parked request at `pending[idx]`: builds the nested
    /// recognizer and feeds it `x`. The holder resolves in `finish_round`
    /// (or its own subtree requests resolve first via the agenda).
    fn open_request(
        &mut self,
        idx: usize,
        x: ChildSym,
        stats: &mut RecognizerStats,
        budget: &mut u32,
        bound: u32,
    ) {
        let (_, node) = self.pending.remove(idx);
        debug_assert!(*budget > 0);
        *budget -= 1;
        stats.subs_created += 1;
        let y = match &self.dag.node(node).kind {
            DagNodeKind::Simple(y) => *y,
            _ => unreachable!("only simple nodes park speculation requests"),
        };
        let mut sub = Box::new(EcRecognizer::new(self.ctx, y, self.depth - 1));
        if sub.begin_round(x, stats) {
            // Conclusive on its first symbol (the common case): resolve
            // the branch immediately instead of deferring to finish.
            if sub.matched {
                self.matched = true;
                let mut advanced = std::mem::take(&mut self.advanced);
                self.advance(node, &mut advanced);
                self.advanced = advanced;
                if !sub.is_complete() {
                    self.stayed.push(Entry { node, sub: Some(sub) });
                }
            }
            // else: the promised chain was budget-denied deeper down; the
            // skip branch already ran when the request parked.
            return;
        }
        // The chain continues inside the fresh subtree while it stays the
        // global cheapest (its costs sit one nesting level below ours).
        sub.drive(x, stats, budget, bound.saturating_sub(1));
        self.holders.push(Entry { node, sub: Some(sub) });
    }

    /// Phase 3: resolve unfinished nested recognizers bottom-up, drop
    /// denied requests, and rebuild the active list. Returns `true` iff
    /// some entry (or nested subtree) matched the symbol.
    fn finish_round(&mut self, stats: &mut RecognizerStats) -> bool {
        if self.dag.is_any {
            return self.matched;
        }
        // Requests still parked were denied by the budget; their skip
        // branches already ran in phase 1, so they simply evaporate — but
        // the round is no longer certified exact.
        stats.specs_denied += self.pending.len() as u64;
        self.pending.clear();
        self.parked_round.clear();
        self.sub_min = u32::MAX;
        let drained = std::mem::take(&mut self.active);
        let mut advanced = std::mem::take(&mut self.advanced);
        let mut stayed = std::mem::take(&mut self.stayed);
        let mut holders = std::mem::take(&mut self.holders);
        for mut entry in holders.drain(..) {
            let matched_sub = match &mut entry.sub {
                Some(sub) => sub.finish_round(stats),
                None => false,
            };
            if matched_sub {
                self.matched = true;
                // As in the inline path: the elided element may end after
                // this symbol (nullability), so advance unconditionally
                // and also stay while the nested recognizer can continue.
                self.advance(entry.node, &mut advanced);
                let complete = entry.sub.as_ref().is_some_and(|s| s.is_complete());
                if !complete {
                    stayed.push(entry);
                }
            }
            // else: the subtree failed (or was budget-denied); the skip
            // branch already competed for this symbol when the entry was
            // parked, so the entry just evaporates.
        }
        self.holders = holders; // drained; keeps its capacity
        self.merge_round(advanced, stayed, drained);
        self.matched
    }

    /// Figure 5's `recognize(x1 … xn)`: feeds a whole child sequence.
    pub fn recognize(
        &mut self,
        syms: impl IntoIterator<Item = ChildSym>,
        stats: &mut RecognizerStats,
    ) -> bool {
        for x in syms {
            stats.symbols += 1;
            if !self.validate(x, stats) {
                return false;
            }
        }
        true
    }

    /// Feeds a whole sibling run of symbols in one call, returning the
    /// index of the first rejected symbol (`None` = every symbol
    /// accepted; symbols after a rejection are not fed).
    ///
    /// Observationally identical — verdicts, stopping point, and every
    /// [`RecognizerStats`] counter — to counting and feeding each symbol
    /// through [`EcRecognizer::validate`] (the contract
    /// `tests` pin exhaustively): the per-symbol budget bound is hoisted
    /// out of the loop (it depends only on the immutable context), and a
    /// round that `begin_round` resolves conclusively —
    /// the non-speculating common case — short-circuits the agenda
    /// driver and bottom-up resolution entirely, staying on the FIFO
    /// lane for the whole run. This is the streaming checker's batched
    /// dispatch path (see [`crate::stream`]).
    pub fn advance_run(
        &mut self,
        syms: &[ChildSym],
        stats: &mut RecognizerStats,
    ) -> Option<usize> {
        let full = self.ctx.spec_budget();
        for (i, &x) in syms.iter().enumerate() {
            stats.symbols += 1;
            let accepted = if self.begin_round(x, stats) {
                self.matched
            } else {
                let mut budget = full;
                self.drive(x, stats, &mut budget, u32::MAX);
                self.finish_round(stats)
            };
            if !accepted {
                return Some(i);
            }
        }
        None
    }
}

/// Convenience: does `elem` accept the child sequence `syms` with the given
/// elision budget? One full ECPV instance.
pub fn accepts_children(
    analysis: &DtdAnalysis,
    dags: &DagSet,
    elem: ElemId,
    syms: &[ChildSym],
    depth: u32,
) -> bool {
    let ctx = RecCtx::new(analysis, dags);
    let mut stats = RecognizerStats::default();
    EcRecognizer::new(ctx, elem, depth).recognize(syms.iter().copied(), &mut stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_dtd::builtin::BuiltinDtd;
    use pv_dtd::DtdAnalysis;

    /// Runs one ECPV instance on symbolic children given by name ("σ" for
    /// character data).
    fn ecpv(analysis: &DtdAnalysis, elem: &str, children: &[&str], depth: u32) -> bool {
        let dags = DagSet::new(analysis);
        let syms: Vec<ChildSym> = children
            .iter()
            .map(|c| {
                if *c == "σ" {
                    ChildSym::Sigma
                } else {
                    ChildSym::Elem(analysis.id(c).unwrap_or_else(|| panic!("no element {c}")))
                }
            })
            .collect();
        accepts_children(analysis, &dags, analysis.id(elem).unwrap(), &syms, depth)
    }

    #[test]
    fn figure6_string_w_rejected() {
        // Example 1 / Figure 6(A): children b, e, c, σ of <a> — reject at
        // the search for c (step 5 of the figure).
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(!ecpv(&analysis, "a", &["b", "e", "c", "σ"], u32::MAX));
    }

    #[test]
    fn figure6_string_s_accepted() {
        // Example 1 / Figure 6(B): children b, c, σ, e of <a> — accept.
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "a", &["b", "c", "σ", "e"], u32::MAX));
    }

    #[test]
    fn figure6_subrecognizer_count() {
        // Figure 6(A) creates nested recognizers for d and f while hunting
        // for e (steps 3–4).
        let analysis = BuiltinDtd::Figure1.analysis();
        let dags = DagSet::new(&analysis);
        let ctx = RecCtx::new(&analysis, &dags);
        let mut stats = RecognizerStats::default();
        let a = analysis.id("a").unwrap();
        let e = analysis.id("e").unwrap();
        let b = analysis.id("b").unwrap();
        let mut rec = EcRecognizer::new(ctx, a, u32::MAX);
        assert!(rec.validate(ChildSym::Elem(b), &mut stats));
        assert!(rec.validate(ChildSym::Elem(e), &mut stats));
        assert!(stats.subs_created >= 2, "expected d and f recognizers, got {stats:?}");
    }

    #[test]
    fn empty_content_rejects_any_child() {
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(!ecpv(&analysis, "e", &["σ"], u32::MAX));
        assert!(!ecpv(&analysis, "e", &["d"], u32::MAX));
        assert!(ecpv(&analysis, "e", &[], u32::MAX));
    }

    #[test]
    fn pcdata_only_accepts_one_sigma() {
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "c", &["σ"], u32::MAX));
        assert!(ecpv(&analysis, "c", &[], u32::MAX));
        assert!(!ecpv(&analysis, "c", &["e"], u32::MAX));
    }

    #[test]
    fn mixed_content_interleaves() {
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "d", &["σ", "e", "σ", "e", "e", "σ"], u32::MAX));
        assert!(!ecpv(&analysis, "d", &["f"], u32::MAX)); // f unreachable from {PCDATA,e}
    }

    #[test]
    fn plus_group_accepts_repeats_and_empty() {
        // r → (a+): group [a] absorbs any number of a's (and their
        // reachable descendants), and zero is fine (potential validity).
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "r", &[], u32::MAX));
        assert!(ecpv(&analysis, "r", &["a", "a", "a"], u32::MAX));
        // b is reachable from a, so a's markup may still be missing.
        assert!(ecpv(&analysis, "r", &["b", "b"], u32::MAX));
        // …and σ is reachable through a → c.
        assert!(ecpv(&analysis, "r", &["σ"], u32::MAX));
    }

    #[test]
    fn example5_t1_terminates_with_bound() {
        // T1: a → (a | b*); input children b, b of <a>.
        // With an unbounded budget Figure 7 shows an infinite recognizer
        // chain; our Simple-node speculation is depth-gated, so any finite
        // budget terminates and accepts via the star-group branch.
        let analysis = BuiltinDtd::T1.analysis();
        for depth in [0, 1, 2, 8, 64] {
            assert!(ecpv(&analysis, "a", &["b", "b"], depth), "depth {depth}");
        }
    }

    #[test]
    fn example6_t2_needs_one_elision_step() {
        // T2: a → ((a | b), b); children b, b of <a> require speculating
        // one elided <a> (Example 6: "taking one recursive step is
        // absolutely necessary") — or matching (b, b) directly, which this
        // model also allows. The instance needing elision is b, b, b:
        // <a><a><b/><b/></a*elided*><b/></a> — wait, direct (b,b) covers
        // two; three b's force the elided inner a.
        // NOTE: an unbounded budget on this PV-strong DTD would recurse
        // forever (Example 5 / Figure 7) — always pass a finite bound.
        let analysis = BuiltinDtd::T2.analysis();
        assert!(ecpv(&analysis, "a", &["b", "b"], 8));
        assert!(ecpv(&analysis, "a", &["b", "b", "b"], 1));
        // Each extra pair of b's needs one more elision level:
        assert!(ecpv(&analysis, "a", &["b", "b", "b", "b"], 8));
        // With a zero budget, three b's cannot fit (a | b), b.
        assert!(!ecpv(&analysis, "a", &["b", "b", "b"], 0));
    }

    #[test]
    fn depth_monotonicity_on_strong_dtd() {
        let analysis = BuiltinDtd::T2.analysis();
        // A sequence of n b's fills ((a|b), b) with a chain of elided a's:
        // each level absorbs one trailing b, and the innermost level takes
        // two — so n b's need max(n-2, 0) elision levels.
        for n in 1..10usize {
            let children: Vec<&str> = vec!["b"; n];
            let needed = n.saturating_sub(2) as u32;
            assert!(ecpv(&analysis, "a", &children, needed), "n={n} at exact budget");
            if needed > 0 {
                assert!(!ecpv(&analysis, "a", &children, needed - 1), "n={n} below budget");
            }
        }
    }

    #[test]
    fn equality_not_allowed_after_commitment() {
        // Deviation test (see module docs): model x → (y), y → (c, c);
        // children c, y of <x> must be rejected — c cannot be moved inside
        // the explicit <y>.
        let analysis =
            DtdAnalysis::parse("<!ELEMENT x (y)><!ELEMENT y (c, c)><!ELEMENT c EMPTY>", "x")
                .unwrap();
        assert!(!ecpv(&analysis, "x", &["c", "y"], u32::MAX));
        // Whereas c, c (both inside an elided y) is fine…
        assert!(ecpv(&analysis, "x", &["c", "c"], u32::MAX));
        // …and y alone is the explicit encoding.
        assert!(ecpv(&analysis, "x", &["y"], u32::MAX));
    }

    #[test]
    fn nested_completion_advances_parent() {
        // x → (y, c); y → (c, e): children c, e, c — the first two commit
        // inside elided y, completing it; the final c matches the outer
        // slot.
        let analysis = DtdAnalysis::parse(
            "<!ELEMENT x (y, c)><!ELEMENT y (c, e)><!ELEMENT c EMPTY><!ELEMENT e EMPTY>",
            "x",
        )
        .unwrap();
        assert!(ecpv(&analysis, "x", &["c", "e", "c"], u32::MAX));
        assert!(ecpv(&analysis, "x", &["c", "c"], u32::MAX)); // e nullable
        assert!(!ecpv(&analysis, "x", &["e", "e"], u32::MAX)); // only one e slot
    }

    #[test]
    fn any_content_accepts_everything() {
        let analysis =
            DtdAnalysis::parse("<!ELEMENT x ANY><!ELEMENT q EMPTY>", "x").unwrap();
        assert!(ecpv(&analysis, "x", &["q", "σ", "q", "x", "σ"], 0));
    }

    #[test]
    fn sigma_descends_into_elided_elements() {
        // r → (a+) … σ under r must speculate a (and then c/d) elisions.
        let analysis = BuiltinDtd::Figure1.analysis();
        let dags = DagSet::new(&analysis);
        let ctx = RecCtx::new(&analysis, &dags);
        let mut stats = RecognizerStats::default();
        let r = analysis.id("r").unwrap();
        let mut rec = EcRecognizer::new(ctx, r, u32::MAX);
        assert!(rec.validate(ChildSym::Sigma, &mut stats));
        // Group matching needs no sub-recognizers (Proposition 2).
        assert_eq!(stats.subs_created, 0);
    }

    #[test]
    fn xhtml_nested_inline_accepts() {
        let analysis = BuiltinDtd::XhtmlBasic.analysis();
        // <p> children: σ b σ — trivially fine; i is reachable from b.
        assert!(ecpv(&analysis, "p", &["σ", "b", "σ", "i"], u32::MAX));
        // li cannot appear under p (not reachable from any inline member).
        assert!(!ecpv(&analysis, "p", &["li"], u32::MAX));
    }

    #[test]
    fn ordered_model_rejects_out_of_order() {
        let analysis = BuiltinDtd::XhtmlBasic.analysis();
        // html → (head, body): body before head is a hard violation.
        assert!(!ecpv(&analysis, "html", &["body", "head"], u32::MAX));
        assert!(ecpv(&analysis, "html", &["head", "body"], u32::MAX));
        assert!(ecpv(&analysis, "html", &["body"], u32::MAX)); // head elidable
        // title (inside head) then body: title commits into elided head.
        assert!(ecpv(&analysis, "html", &["title", "body"], u32::MAX));
        // but body then title is unfixable.
        assert!(!ecpv(&analysis, "html", &["body", "title"], u32::MAX));
    }

    /// Distilled gap (a) — **budget drain**, σ-tower flavour (the
    /// simplest instance the exhaustive k = 2 sweep surfaced): under
    /// `a → (a?, b)` with `b ANY`, a bare σ child of `a` must be accepted
    /// at any generous depth bound (completion `<a><b>σ</b></a>`). The
    /// pre-agenda scheduler followed the `a?`-speculation tower in DFS
    /// order and burned the whole shared budget before the cheaper
    /// `b`-elision — which only became visible behind the failure cascade
    /// — was ever tried, so it rejected at depth ≥ 33 while accepting at
    /// small depths (non-monotone). The global agenda prices the `b`
    /// chain cheaper (`1 + md(b, σ) = 1` vs `2`) and the eager skip
    /// branch makes it visible in the same round.
    #[test]
    fn regression_gap_a_sigma_tower_does_not_starve_cheap_chain() {
        let analysis =
            DtdAnalysis::parse("<!ELEMENT a (a?, b)><!ELEMENT b ANY>", "a").unwrap();
        for depth in [1, 8, 32, 48, 64, 256] {
            assert!(ecpv(&analysis, "a", &["σ"], depth), "depth {depth}");
            assert!(ecpv(&analysis, "a", &["σ", "b"], depth), "depth {depth}");
            assert!(ecpv(&analysis, "a", &["σ", "a", "b"], depth), "depth {depth}");
        }
    }

    /// Distilled gap (a) — **committed-sub budget drain on a k ≥ 32
    /// recursive DTD** (the `corpus::recursive(8, 4)` family shape,
    /// inlined here because `pv-core` cannot depend on `pv-workload`):
    /// 8 levels × 4 columns of braided chains, a recursive re-entry at
    /// the middle level, mixed stars at the bottom — `k = 32` pushes the
    /// per-symbol budget into its scaled regime. After `x1_0` commits a
    /// nested recognizer, absorbing a following `x0_0` needs an elision
    /// chain to the bottom star; the old scheduler ran the committed
    /// subtree's internal speculation ahead of it unconditionally and
    /// drained the budget, rejecting a potentially-valid sequence
    /// (completion: both children inside one elided chain's bottom star).
    #[test]
    fn regression_gap_a_committed_sub_drain_on_k32_recursive_dtd() {
        let (depth, fanout) = (8usize, 4usize);
        let mut src = String::new();
        for l in 0..depth {
            for j in 0..fanout {
                if l + 1 == depth {
                    src.push_str(&format!("<!ELEMENT x{l}_{j} (#PCDATA | x0_{j})*>"));
                } else {
                    let mut alts = vec![format!("x{}_{j}", l + 1)];
                    alts.push(format!("x{}_{}", l + 1, (j + 1) % fanout));
                    if l == depth / 2 {
                        alts.push(format!("x0_{j}"));
                    }
                    src.push_str(&format!("<!ELEMENT x{l}_{j} ({})>", alts.join(" | ")));
                }
            }
        }
        let analysis = DtdAnalysis::parse(&src, "x0_0").unwrap();
        assert_eq!(analysis.stats.m, 32, "the regression requires k >= 32");
        assert!(ecpv(&analysis, "x0_0", &["x1_0", "x0_0"], 64));
        assert!(ecpv(&analysis, "x0_0", &["x1_0", "x1_0"], 64));
        assert!(ecpv(&analysis, "x0_0", &["x1_0", "σ"], 64));
        // Soundness pin: with a zero elision budget there is no chain to
        // the bottom star, so the same sequence must still reject.
        assert!(!ecpv(&analysis, "x0_0", &["x1_0", "x0_0"], 0));
    }

    /// Distilled gap (b) — the **equality/elision branch point**: a fresh
    /// simple node for `y` seeing `x = y` when `md(y, y)` is finite used
    /// to *commit* to the elision (nesting the explicit element inside a
    /// speculative one) and discard the equality parse. Under
    /// `a → (b, a?)`, `b → (a?)`, the sequence `b, a, a` needs **both**
    /// branches across rounds: the explicit `a` equality-consumes the
    /// `a?` slot in one surviving parse state while the elision branch
    /// (an inserted `<a>` wrapping `<b><a/></b><a/>`) carries the other;
    /// committing to either alone rejects. Likewise `<a><a>t</a>t</a>`
    /// (document level) rejects under commitment but completes as
    /// `<a><a><b>t</b></a><b>t</b></a>`.
    #[test]
    fn regression_gap_b_equality_elision_branch_point() {
        let analysis =
            DtdAnalysis::parse("<!ELEMENT a (b, a?)><!ELEMENT b (a?)>", "a").unwrap();
        assert!(ecpv(&analysis, "a", &["b", "a", "a"], 64));
        assert!(ecpv(&analysis, "a", &["b", "a", "b"], 64));
        // Document-level composition of both gap classes (fails before
        // the agenda, passes after): checked via the checker to exercise
        // the full per-node pipeline.
        let analysis =
            DtdAnalysis::parse("<!ELEMENT a (a?, b)><!ELEMENT b ANY>", "a").unwrap();
        let checker = crate::checker::PvChecker::with_policy(
            &analysis,
            crate::depth::DepthPolicy::Bounded(64),
        );
        for xml in ["<a><a>t</a>t</a>", "<a><a>t</a><b/>t</a>", "<a>t</a>"] {
            let doc = pv_xml::parse(xml).unwrap();
            let out = checker.check_document(&doc);
            assert!(out.is_potentially_valid(), "{xml}: {:?}", out.violation);
        }
    }

    /// Budget-exactness telemetry: on every round the sweeps certify, the
    /// agenda must report zero denied requests — the counter the
    /// completeness story leans on (`specs_denied == 0` ⇒ the verdict is
    /// budget-independent).
    #[test]
    fn specs_denied_zero_on_small_spaces() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let dags = DagSet::new(&analysis);
        let ctx = RecCtx::new(&analysis, &dags);
        let mut stats = RecognizerStats::default();
        let a = analysis.id("a").unwrap();
        let b = analysis.id("b").unwrap();
        let mut rec = EcRecognizer::new(ctx, a, u32::MAX);
        rec.recognize([ChildSym::Elem(b), ChildSym::Sigma, ChildSym::Elem(b)], &mut stats);
        assert_eq!(stats.specs_denied, 0, "{stats:?}");
    }

    /// Feeds `syms` one at a time through `validate`, mirroring
    /// `recognize`'s counting, and returns the first rejected index.
    fn repeated_validate(
        rec: &mut EcRecognizer<'_>,
        syms: &[ChildSym],
        stats: &mut RecognizerStats,
    ) -> Option<usize> {
        for (i, &x) in syms.iter().enumerate() {
            stats.symbols += 1;
            if !rec.validate(x, stats) {
                return Some(i);
            }
        }
        None
    }

    /// `advance_run` contract: identical stopping point *and* identical
    /// stats to repeated `validate`, over every symbol sequence of
    /// bounded length for several parents across the builtin DTDs —
    /// including sequences that reject mid-run and runs fed in several
    /// consecutive `advance_run` calls.
    #[test]
    fn advance_run_matches_repeated_validate() {
        for (builtin, parents, depth) in [
            (BuiltinDtd::Figure1, &["a", "r", "d", "c", "e"][..], u32::MAX),
            (BuiltinDtd::T2, &["a", "b"][..], 8),
            (BuiltinDtd::XhtmlBasic, &["html", "p"][..], 16),
        ] {
            let analysis = builtin.analysis();
            let dags = DagSet::new(&analysis);
            let ctx = RecCtx::new(&analysis, &dags);
            let mut alphabet = vec![ChildSym::Sigma];
            alphabet.extend(
                ["a", "b", "c", "e", "body", "li"]
                    .iter()
                    .filter_map(|n| analysis.id(n).map(ChildSym::Elem)),
            );
            // Every sequence of length <= 3 over the alphabet, as base-N
            // counters.
            for len in 0..=3usize {
                for mut code in 0..alphabet.len().pow(len as u32) {
                    let mut syms = Vec::with_capacity(len);
                    for _ in 0..len {
                        syms.push(alphabet[code % alphabet.len()]);
                        code /= alphabet.len();
                    }
                    for parent in parents {
                        let e = analysis.id(parent).unwrap();
                        let mut batch_stats = RecognizerStats::default();
                        let mut step_stats = RecognizerStats::default();
                        let mut batch = EcRecognizer::new(ctx, e, depth);
                        let mut step = EcRecognizer::new(ctx, e, depth);
                        let got = batch.advance_run(&syms, &mut batch_stats);
                        let expect = repeated_validate(&mut step, &syms, &mut step_stats);
                        assert_eq!(got, expect, "{parent}: {syms:?}");
                        assert_eq!(batch_stats, step_stats, "{parent}: {syms:?}");
                        // Split runs compose: feeding the same accepted
                        // sequence as two consecutive runs is the same
                        // as one.
                        if expect.is_none() && !syms.is_empty() {
                            let mut split_stats = RecognizerStats::default();
                            let mut split = EcRecognizer::new(ctx, e, depth);
                            let mid = syms.len() / 2;
                            assert_eq!(
                                split.advance_run(&syms[..mid], &mut split_stats),
                                None
                            );
                            assert_eq!(
                                split.advance_run(&syms[mid..], &mut split_stats),
                                None,
                                "{parent}: {syms:?} split at {mid}"
                            );
                            assert_eq!(split_stats, batch_stats, "{parent}: {syms:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let dags = DagSet::new(&analysis);
        let ctx = RecCtx::new(&analysis, &dags);
        let mut stats = RecognizerStats::default();
        let a = analysis.id("a").unwrap();
        let b = analysis.id("b").unwrap();
        let mut rec = EcRecognizer::new(ctx, a, u32::MAX);
        rec.recognize([ChildSym::Elem(b), ChildSym::Sigma], &mut stats);
        assert_eq!(stats.symbols, 2);
        assert!(stats.node_visits >= 2);
    }
}
