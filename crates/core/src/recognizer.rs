//! The **ECRecognizer** algorithm (paper Figure 5): greedy, depth-bounded
//! recognition of Element Content Potential Validity (Problem ECPV).
//!
//! ## How it works
//!
//! For an element `e`, the recognizer walks `DAG_e` keeping an ordered
//! *active node list*. For each input symbol `x` (a child element or a σ
//! character-data run):
//!
//! * a **star-group** node matches `x` if `x` is a member or is reachable
//!   from a member (Proposition 2); the node stays active — groups absorb
//!   arbitrarily many symbols;
//! * a **simple** node `n` for element `y` matches if `x = y` (the node is
//!   consumed and its DAG successors become active with priority), or if
//!   `x` is reachable from `y` — in which case a **nested recognizer** for
//!   `y` is spawned (Figure 5 line 25): this speculates that `<y>` tags are
//!   *elided* and `x` sits inside them (grammar step `Y → Ŷ`). The nested
//!   recognizer is cached on the node and drains further symbols until its
//!   own active list empties ("its last element was matched", Example 4),
//!   at which point the node advances;
//! * a node matching nothing is removed and its successors are examined
//!   *for the same symbol* (the greedy skip — sound because every element
//!   is nullable under the PV grammar, Theorem 3, so a skipped position can
//!   always be filled by later markup insertion).
//!
//! Acceptance: every input symbol must be matched by some active node; the
//! input may end at any time (all remaining positions are nullable).
//!
//! ## Depth bound
//!
//! Nested recognizers may chain (elided element inside elided element …).
//! The chain follows *strong edges* only, so for non-PV-strong DTDs it
//! terminates structurally; for PV-strong DTDs (Example 5's
//! `a → (a | b*)`) an explicit budget caps it — the paper's document-depth
//! bound `D`, threaded through constructor calls as `depth − 1`.
//!
//! ## Deviation from the paper's pseudocode
//!
//! Figure 5 checks `element(n) = x` (line 29) even when the node's cached
//! nested recognizer has already consumed content. That would let one DAG
//! position account for both an elided `<y>…</y>` *and* an explicit `<y>`,
//! accepting non-PV inputs (e.g. children `c, y` against model `(y)` with
//! `y → (c, c)`). We perform the equality check only while no content has
//! been committed into the node's nested recognizer; differential tests
//! against the Earley baseline confirm the fix.

use crate::dag::{DagNodeId, DagNodeKind, DagSet, ElementDag};
use crate::token::ChildSym;
use pv_dtd::{DtdAnalysis, ElemId, GroupSet, Reachability};

/// Shared immutable context for a family of recognizers: the per-element
/// DAGs and the reachability lookup table.
#[derive(Clone, Copy)]
pub struct RecCtx<'a> {
    /// All element DAGs.
    pub dags: &'a DagSet,
    /// Reachability closure `LT`.
    pub reach: &'a Reachability,
}

impl<'a> RecCtx<'a> {
    /// Builds a context from a compiled DTD and its DAG set.
    pub fn new(analysis: &'a DtdAnalysis, dags: &'a DagSet) -> Self {
        RecCtx { dags, reach: &analysis.reach }
    }

    /// Proposition 2's star-group test: membership or reachability.
    #[inline]
    fn group_matches(&self, g: &GroupSet, x: ChildSym) -> bool {
        match x {
            ChildSym::Elem(e) => {
                g.contains(e) || g.elems.iter().any(|&y| self.reach.reaches(y, e))
            }
            ChildSym::Sigma => {
                g.pcdata || g.elems.iter().any(|&y| self.reach.reaches_pcdata(y))
            }
        }
    }
}

/// Work counters, aggregated across nested recognizers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecognizerStats {
    /// Input symbols processed (top-level only).
    pub symbols: u64,
    /// Active-list entries examined (including cascades and nested work).
    pub node_visits: u64,
    /// Nested recognizers created (Figure 5 line 25 executions).
    pub subs_created: u64,
}

impl RecognizerStats {
    /// Accumulates another counter set into this one. Addition is
    /// commutative and associative, so merging per-node stats in document
    /// order reproduces the sequential checker's totals exactly — the
    /// property the parallel checker's deterministic reduction relies on.
    pub fn merge(&mut self, other: &RecognizerStats) {
        self.symbols += other.symbols;
        self.node_visits += other.node_visits;
        self.subs_created += other.subs_created;
    }
}

/// One active DAG position, optionally carrying an in-progress nested
/// recognizer for an elided element.
struct Entry<'a> {
    node: DagNodeId,
    sub: Option<Box<EcRecognizer<'a>>>,
}

impl Entry<'_> {
    fn fresh(node: DagNodeId) -> Self {
        Entry { node, sub: None }
    }
}

enum Outcome {
    /// Matched; the node remains active (star-groups, partial subs).
    Stay,
    /// Matched; the node is consumed — successors activate for the *next*
    /// symbol.
    Advance,
    /// Not matched; skip to successors for the *same* symbol.
    NoMatch,
}

/// The element-content recognizer (one instance per ECPV problem).
pub struct EcRecognizer<'a> {
    ctx: RecCtx<'a>,
    dag: &'a ElementDag,
    /// Remaining elision budget (`depth` in Figure 5).
    depth: u32,
    active: Vec<Entry<'a>>,
    /// Scratch: "a fresh entry for node i exists in the current generation"
    /// (entries examinable for the symbol being processed).
    cur: Vec<bool>,
    /// Scratch: same, for the next generation (successors of consumed
    /// nodes — available only from the following symbol on).
    nxt: Vec<bool>,
    /// Scratch for one `validate` round: entries consumed this symbol whose
    /// successors activate for the next one. Kept as a field (emptied
    /// between rounds) so the steady-state hot path never allocates.
    advanced: Vec<Entry<'a>>,
    /// Scratch for one `validate` round: entries that matched and stay
    /// active (star-groups, partial subs).
    stayed: Vec<Entry<'a>>,
    /// Scratch for one `validate` round: parked would-be speculators with
    /// their `spec_key`, drained min-key-first once the FIFO is empty.
    deferred: Vec<(u32, Entry<'a>)>,
}

impl<'a> EcRecognizer<'a> {
    /// Creates a recognizer for the content of element `e` with the given
    /// elision budget (Figure 5, constructor).
    pub fn new(ctx: RecCtx<'a>, e: ElemId, depth: u32) -> Self {
        let dag = ctx.dags.dag(e);
        let mut rec = EcRecognizer {
            ctx,
            dag,
            depth,
            active: Vec::with_capacity(dag.starts.len()),
            cur: Vec::new(),
            nxt: Vec::new(),
            advanced: Vec::new(),
            stayed: Vec::new(),
            deferred: Vec::new(),
        };
        rec.reset(e, depth);
        rec
    }

    /// Re-arms this recognizer for a fresh ECPV instance over element `e`
    /// with the given elision budget, **reusing every internal buffer**.
    /// After `reset` the recognizer is observationally identical to a
    /// freshly constructed one ([`EcRecognizer::new`] is implemented on top
    /// of it); the checker's per-document scratch
    /// ([`crate::checker::CheckScratch`]) relies on this to keep the
    /// per-node hot path allocation-free.
    pub fn reset(&mut self, e: ElemId, depth: u32) {
        let dag = self.ctx.dags.dag(e);
        self.dag = dag;
        self.depth = depth;
        self.active.clear();
        self.advanced.clear();
        self.stayed.clear();
        self.deferred.clear();
        self.cur.clear();
        self.cur.resize(dag.len(), false);
        self.nxt.clear();
        self.nxt.resize(dag.len(), false);
        for &s in &dag.starts {
            if !self.cur[s as usize] {
                self.cur[s as usize] = true;
                self.active.push(Entry::fresh(s));
            }
        }
    }

    /// `true` once every DAG position has been consumed or skipped — the
    /// elided element's content cannot take further symbols, so the parent
    /// may advance past it (Example 4: "f is removed from the active node
    /// set as its last element was matched").
    #[inline]
    pub fn is_complete(&self) -> bool {
        !self.dag.is_any && self.active.is_empty()
    }

    /// Baseline for the total speculations allowed while processing one
    /// input symbol, shared across the whole nested-recognizer tree.
    /// Tracking *every* speculative alternative is exponential in the
    /// depth budget on densely recursive DTDs (a blow-up the paper's
    /// pseudocode shares); the shared budget keeps per-symbol work at
    /// `O(BUDGET · k)` while retaining enough breadth that differential
    /// tests against the exact Earley baseline find no divergence on
    /// randomized workloads. The effective budget is
    /// `max(SPEC_BUDGET_PER_SYMBOL, k + 1)` — every finite md value is
    /// `< k`, so the cheapest *fresh* elision chain (which active-list
    /// priority explores before costlier fresh siblings) fits whenever the
    /// round starts with a full budget. Already-committed nested
    /// recognizers are ordered ahead of fresh speculation and may still
    /// drain the budget first on densely recursive DTDs; the ROADMAP's
    /// recognizer-completeness audit tracks that residual case.
    pub const SPEC_BUDGET_PER_SYMBOL: u32 = 32;

    /// Figure 5's `validate(x)`: feeds one symbol, returns `true` iff the
    /// content so far is still potentially valid.
    pub fn validate(&mut self, x: ChildSym, stats: &mut RecognizerStats) -> bool {
        // Every finite md value is < k, so k + 1 always covers the
        // cheapest elision chain.
        let k = self.ctx.reach.element_count() as u32;
        let mut budget = Self::SPEC_BUDGET_PER_SYMBOL.max(k.saturating_add(1));
        self.validate_inner(x, stats, &mut budget)
    }

    /// Inner step sharing the per-symbol speculation budget across nested
    /// recognizers.
    fn validate_inner(
        &mut self,
        x: ChildSym,
        stats: &mut RecognizerStats,
        spec_left: &mut u32,
    ) -> bool {
        if self.dag.is_any {
            // ANY content absorbs every declared symbol (paper Section 4).
            return true;
        }
        let mut result = false;
        // The four round buffers are fields so their capacity survives
        // across symbols and nodes (allocation-free steady state); they are
        // taken locally for the round and rotated back at the end.
        let mut fifo = std::mem::take(&mut self.active);
        let mut deferred = std::mem::take(&mut self.deferred);
        let mut advanced = std::mem::take(&mut self.advanced);
        let mut stayed = std::mem::take(&mut self.stayed);
        // Reset generation flags: `cur` marks fresh (sub-less) entries
        // examinable for this symbol, `nxt` marks fresh entries created for
        // the next symbol. Keeping the generations separate is essential:
        // a node consumed by a cascading skip in this round must not
        // suppress the same node arriving fresh as an advance successor.
        self.cur.fill(false);
        self.nxt.fill(false);
        for e in &fifo {
            if e.sub.is_none() {
                self.cur[e.node as usize] = true;
            }
        }
        // Entries are processed cheapest-speculation-first (md-ascending;
        // non-speculating entries first of all, original order among equal
        // keys); NoMatch pushes DAG successors, examined for the same
        // symbol (cascading skip). Priority order matters because the
        // speculation budget is shared: exploring the md-optimal elision
        // chain first guarantees it cannot be starved by a costlier
        // sibling branch burning the budget on a detour (alternation
        // order in the DTD is arbitrary), which would otherwise make
        // acceptance non-monotone in the depth bound.
        // Implementation: entries that cannot open a fresh speculation for
        // `x` (key 0 — the overwhelmingly common case) flow through a plain
        // FIFO scan exactly as in the paper; would-be speculators are
        // parked in `deferred` and drained min-key-first only once no
        // FIFO work is pending. Both lists are tiny (bounded by the DAG),
        // so the min scan beats a heap's constants.
        let mut di = 0usize; // deferred entries before this index are spent
        // Classify the initial generation in place, keeping the original
        // order on both sides (stable partition). Order is not entirely
        // free within key 0: fresh key-0 entries consume no budget, but
        // committed subs (also key 0 — their speculation is already paid
        // for) can drain the shared budget from *inside* their recursion,
        // so their relative order must stay deterministic.
        for entry in fifo.extract_if(.., |e| self.spec_key(e, x) != 0) {
            let key = self.spec_key(&entry, x);
            deferred.push((key, entry));
        }
        // pop() consumes from the back; reverse so the initial entries are
        // scanned front-to-back in their original order.
        fifo.reverse();
        loop {
            let mut entry = if let Some(e) = fifo.pop() {
                e
            } else {
                // FIFO drained: take the cheapest remaining speculator.
                let Some(best) = (di..deferred.len())
                    .min_by_key(|&j| deferred[j].0)
                else {
                    break;
                };
                deferred.swap(di, best);
                di += 1;
                std::mem::replace(&mut deferred[di - 1], (0, Entry::fresh(u32::MAX))).1
            };
            stats.node_visits += 1;
            let had_sub = entry.sub.is_some();
            let outcome = self.try_match(&mut entry, x, stats, spec_left);
            match outcome {
                Outcome::Stay => {
                    result = true;
                    stayed.push(entry);
                }
                Outcome::Advance => {
                    result = true;
                    if !had_sub {
                        self.cur[entry.node as usize] = false;
                    }
                    for &s in &self.dag.node(entry.node).succs {
                        if !self.nxt[s as usize] {
                            self.nxt[s as usize] = true;
                            advanced.push(Entry::fresh(s));
                        }
                    }
                }
                Outcome::NoMatch => {
                    if !had_sub {
                        self.cur[entry.node as usize] = false;
                    }
                    for &s in &self.dag.node(entry.node).succs {
                        if !self.cur[s as usize] {
                            self.cur[s as usize] = true;
                            let fresh = Entry::fresh(s);
                            let key = self.spec_key(&fresh, x);
                            if key == 0 {
                                // O(1) back-push: popped next (DFS order).
                                // Safe — cascade successors are sub-less
                                // and key 0, so they consume no budget and
                                // their position cannot affect any other
                                // entry's outcome.
                                fifo.push(fresh);
                            } else {
                                deferred.push((key, fresh));
                            }
                        }
                    }
                }
            }
        }
        // Greedy priority: freshly advanced positions first (paper line 32
        // pre-pends children of matched nodes), then surviving positions.
        // A node may legitimately appear twice — once as a fresh advance
        // successor, once as a surviving speculative (sub-carrying) entry;
        // these are distinct parse states. Identical *fresh* duplicates,
        // however, are merged to keep the list O(|DAG|).
        advanced.append(&mut stayed);
        self.cur.fill(false);
        advanced.retain(|e| {
            if e.sub.is_some() {
                return true;
            }
            let seen = self.cur[e.node as usize];
            self.cur[e.node as usize] = true;
            !seen
        });
        // Rotate the buffers back: the drained FIFO becomes the next
        // round's `advanced` scratch, keeping its capacity.
        deferred.clear();
        self.deferred = deferred;
        self.stayed = stayed;
        self.advanced = fifo;
        self.active = advanced;
        result
    }

    /// Figure 5's `recognize(x1 … xn)`: feeds a whole child sequence.
    pub fn recognize(
        &mut self,
        syms: impl IntoIterator<Item = ChildSym>,
        stats: &mut RecognizerStats,
    ) -> bool {
        for x in syms {
            stats.symbols += 1;
            if !self.validate(x, stats) {
                return false;
            }
        }
        true
    }

    /// Processing priority of an active entry for symbol `x`: `0` for
    /// entries that match (or fail) without opening a fresh speculation —
    /// groups, PCDATA, committed subs, equality-only simple nodes — and
    /// `1 + md(y, x)` for a fresh simple node that would speculate, so the
    /// cheapest elision chain is explored before budget can be burnt on
    /// costlier ones.
    fn spec_key(&self, entry: &Entry<'a>, x: ChildSym) -> u32 {
        if entry.sub.is_some() {
            return 0;
        }
        match &self.dag.node(entry.node).kind {
            DagNodeKind::Group(_) | DagNodeKind::Pcdata => 0,
            DagNodeKind::Simple(y) => {
                let need = match x {
                    ChildSym::Elem(e) => self.ctx.dags.min_elisions(*y, e),
                    ChildSym::Sigma => self.ctx.dags.min_elisions_sigma(*y),
                };
                if need != u32::MAX && need < self.depth {
                    need.saturating_add(1)
                } else {
                    0
                }
            }
        }
    }

    fn try_match(
        &mut self,
        entry: &mut Entry<'a>,
        x: ChildSym,
        stats: &mut RecognizerStats,
        spec_left: &mut u32,
    ) -> Outcome {
        match &self.dag.node(entry.node).kind {
            DagNodeKind::Group(g) => {
                if self.ctx.group_matches(g, x) {
                    Outcome::Stay
                } else {
                    Outcome::NoMatch
                }
            }
            DagNodeKind::Pcdata => {
                if x == ChildSym::Sigma {
                    // PCDATA derives a single σ; runs are pre-collapsed.
                    Outcome::Advance
                } else {
                    Outcome::NoMatch
                }
            }
            DagNodeKind::Simple(y) => {
                let y = *y;
                if let Some(sub) = &mut entry.sub {
                    // Content already committed inside the elided <y>.
                    if sub.validate_inner(x, stats, spec_left) {
                        return if sub.is_complete() { Outcome::Advance } else { Outcome::Stay };
                    }
                    // NOTE: no equality fallback here — see module docs
                    // (deviation from Figure 5 line 29).
                    return Outcome::NoMatch;
                }
                // Elision speculation (Figure 5 lines 23–28), gated by the
                // precomputed minimal-elision distance: a fresh nested
                // recognizer for y absorbs x iff md(y, x) < depth, so the
                // O(k^D) recursive probe of the paper's pseudocode becomes
                // an O(1) test and subs are built only when they succeed.
                let need = match x {
                    ChildSym::Elem(e) => self.ctx.dags.min_elisions(y, e),
                    ChildSym::Sigma => self.ctx.dags.min_elisions_sigma(y),
                };
                // One speculative entry per node (the paper caches a single
                // n.recognizer): if one is already live, this fresh entry
                // does not open a second speculation.
                if need != u32::MAX && need < self.depth && *spec_left > 0 {
                    stats.subs_created += 1;
                    *spec_left -= 1;
                    let mut sub = Box::new(EcRecognizer::new(self.ctx, y, self.depth - 1));
                    // The probe table promises acceptance, but budget
                    // exhaustion deeper in the tree may still deny it.
                    let accepted = sub.validate_inner(x, stats, spec_left);
                    if accepted {
                        if sub.is_complete() {
                            return Outcome::Advance;
                        }
                        entry.sub = Some(sub);
                        return Outcome::Stay;
                    }
                }
                if x == ChildSym::Elem(y) {
                    Outcome::Advance
                } else {
                    Outcome::NoMatch
                }
            }
        }
    }
}

/// Convenience: does `elem` accept the child sequence `syms` with the given
/// elision budget? One full ECPV instance.
pub fn accepts_children(
    analysis: &DtdAnalysis,
    dags: &DagSet,
    elem: ElemId,
    syms: &[ChildSym],
    depth: u32,
) -> bool {
    let ctx = RecCtx::new(analysis, dags);
    let mut stats = RecognizerStats::default();
    EcRecognizer::new(ctx, elem, depth).recognize(syms.iter().copied(), &mut stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_dtd::builtin::BuiltinDtd;
    use pv_dtd::DtdAnalysis;

    /// Runs one ECPV instance on symbolic children given by name ("σ" for
    /// character data).
    fn ecpv(analysis: &DtdAnalysis, elem: &str, children: &[&str], depth: u32) -> bool {
        let dags = DagSet::new(analysis);
        let syms: Vec<ChildSym> = children
            .iter()
            .map(|c| {
                if *c == "σ" {
                    ChildSym::Sigma
                } else {
                    ChildSym::Elem(analysis.id(c).unwrap_or_else(|| panic!("no element {c}")))
                }
            })
            .collect();
        accepts_children(analysis, &dags, analysis.id(elem).unwrap(), &syms, depth)
    }

    #[test]
    fn figure6_string_w_rejected() {
        // Example 1 / Figure 6(A): children b, e, c, σ of <a> — reject at
        // the search for c (step 5 of the figure).
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(!ecpv(&analysis, "a", &["b", "e", "c", "σ"], u32::MAX));
    }

    #[test]
    fn figure6_string_s_accepted() {
        // Example 1 / Figure 6(B): children b, c, σ, e of <a> — accept.
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "a", &["b", "c", "σ", "e"], u32::MAX));
    }

    #[test]
    fn figure6_subrecognizer_count() {
        // Figure 6(A) creates nested recognizers for d and f while hunting
        // for e (steps 3–4).
        let analysis = BuiltinDtd::Figure1.analysis();
        let dags = DagSet::new(&analysis);
        let ctx = RecCtx::new(&analysis, &dags);
        let mut stats = RecognizerStats::default();
        let a = analysis.id("a").unwrap();
        let e = analysis.id("e").unwrap();
        let b = analysis.id("b").unwrap();
        let mut rec = EcRecognizer::new(ctx, a, u32::MAX);
        assert!(rec.validate(ChildSym::Elem(b), &mut stats));
        assert!(rec.validate(ChildSym::Elem(e), &mut stats));
        assert!(stats.subs_created >= 2, "expected d and f recognizers, got {stats:?}");
    }

    #[test]
    fn empty_content_rejects_any_child() {
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(!ecpv(&analysis, "e", &["σ"], u32::MAX));
        assert!(!ecpv(&analysis, "e", &["d"], u32::MAX));
        assert!(ecpv(&analysis, "e", &[], u32::MAX));
    }

    #[test]
    fn pcdata_only_accepts_one_sigma() {
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "c", &["σ"], u32::MAX));
        assert!(ecpv(&analysis, "c", &[], u32::MAX));
        assert!(!ecpv(&analysis, "c", &["e"], u32::MAX));
    }

    #[test]
    fn mixed_content_interleaves() {
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "d", &["σ", "e", "σ", "e", "e", "σ"], u32::MAX));
        assert!(!ecpv(&analysis, "d", &["f"], u32::MAX)); // f unreachable from {PCDATA,e}
    }

    #[test]
    fn plus_group_accepts_repeats_and_empty() {
        // r → (a+): group [a] absorbs any number of a's (and their
        // reachable descendants), and zero is fine (potential validity).
        let analysis = BuiltinDtd::Figure1.analysis();
        assert!(ecpv(&analysis, "r", &[], u32::MAX));
        assert!(ecpv(&analysis, "r", &["a", "a", "a"], u32::MAX));
        // b is reachable from a, so a's markup may still be missing.
        assert!(ecpv(&analysis, "r", &["b", "b"], u32::MAX));
        // …and σ is reachable through a → c.
        assert!(ecpv(&analysis, "r", &["σ"], u32::MAX));
    }

    #[test]
    fn example5_t1_terminates_with_bound() {
        // T1: a → (a | b*); input children b, b of <a>.
        // With an unbounded budget Figure 7 shows an infinite recognizer
        // chain; our Simple-node speculation is depth-gated, so any finite
        // budget terminates and accepts via the star-group branch.
        let analysis = BuiltinDtd::T1.analysis();
        for depth in [0, 1, 2, 8, 64] {
            assert!(ecpv(&analysis, "a", &["b", "b"], depth), "depth {depth}");
        }
    }

    #[test]
    fn example6_t2_needs_one_elision_step() {
        // T2: a → ((a | b), b); children b, b of <a> require speculating
        // one elided <a> (Example 6: "taking one recursive step is
        // absolutely necessary") — or matching (b, b) directly, which this
        // model also allows. The instance needing elision is b, b, b:
        // <a><a><b/><b/></a*elided*><b/></a> — wait, direct (b,b) covers
        // two; three b's force the elided inner a.
        // NOTE: an unbounded budget on this PV-strong DTD would recurse
        // forever (Example 5 / Figure 7) — always pass a finite bound.
        let analysis = BuiltinDtd::T2.analysis();
        assert!(ecpv(&analysis, "a", &["b", "b"], 8));
        assert!(ecpv(&analysis, "a", &["b", "b", "b"], 1));
        // Each extra pair of b's needs one more elision level:
        assert!(ecpv(&analysis, "a", &["b", "b", "b", "b"], 8));
        // With a zero budget, three b's cannot fit (a | b), b.
        assert!(!ecpv(&analysis, "a", &["b", "b", "b"], 0));
    }

    #[test]
    fn depth_monotonicity_on_strong_dtd() {
        let analysis = BuiltinDtd::T2.analysis();
        // A sequence of n b's fills ((a|b), b) with a chain of elided a's:
        // each level absorbs one trailing b, and the innermost level takes
        // two — so n b's need max(n-2, 0) elision levels.
        for n in 1..10usize {
            let children: Vec<&str> = vec!["b"; n];
            let needed = n.saturating_sub(2) as u32;
            assert!(ecpv(&analysis, "a", &children, needed), "n={n} at exact budget");
            if needed > 0 {
                assert!(!ecpv(&analysis, "a", &children, needed - 1), "n={n} below budget");
            }
        }
    }

    #[test]
    fn equality_not_allowed_after_commitment() {
        // Deviation test (see module docs): model x → (y), y → (c, c);
        // children c, y of <x> must be rejected — c cannot be moved inside
        // the explicit <y>.
        let analysis =
            DtdAnalysis::parse("<!ELEMENT x (y)><!ELEMENT y (c, c)><!ELEMENT c EMPTY>", "x")
                .unwrap();
        assert!(!ecpv(&analysis, "x", &["c", "y"], u32::MAX));
        // Whereas c, c (both inside an elided y) is fine…
        assert!(ecpv(&analysis, "x", &["c", "c"], u32::MAX));
        // …and y alone is the explicit encoding.
        assert!(ecpv(&analysis, "x", &["y"], u32::MAX));
    }

    #[test]
    fn nested_completion_advances_parent() {
        // x → (y, c); y → (c, e): children c, e, c — the first two commit
        // inside elided y, completing it; the final c matches the outer
        // slot.
        let analysis = DtdAnalysis::parse(
            "<!ELEMENT x (y, c)><!ELEMENT y (c, e)><!ELEMENT c EMPTY><!ELEMENT e EMPTY>",
            "x",
        )
        .unwrap();
        assert!(ecpv(&analysis, "x", &["c", "e", "c"], u32::MAX));
        assert!(ecpv(&analysis, "x", &["c", "c"], u32::MAX)); // e nullable
        assert!(!ecpv(&analysis, "x", &["e", "e"], u32::MAX)); // only one e slot
    }

    #[test]
    fn any_content_accepts_everything() {
        let analysis =
            DtdAnalysis::parse("<!ELEMENT x ANY><!ELEMENT q EMPTY>", "x").unwrap();
        assert!(ecpv(&analysis, "x", &["q", "σ", "q", "x", "σ"], 0));
    }

    #[test]
    fn sigma_descends_into_elided_elements() {
        // r → (a+) … σ under r must speculate a (and then c/d) elisions.
        let analysis = BuiltinDtd::Figure1.analysis();
        let dags = DagSet::new(&analysis);
        let ctx = RecCtx::new(&analysis, &dags);
        let mut stats = RecognizerStats::default();
        let r = analysis.id("r").unwrap();
        let mut rec = EcRecognizer::new(ctx, r, u32::MAX);
        assert!(rec.validate(ChildSym::Sigma, &mut stats));
        // Group matching needs no sub-recognizers (Proposition 2).
        assert_eq!(stats.subs_created, 0);
    }

    #[test]
    fn xhtml_nested_inline_accepts() {
        let analysis = BuiltinDtd::XhtmlBasic.analysis();
        // <p> children: σ b σ — trivially fine; i is reachable from b.
        assert!(ecpv(&analysis, "p", &["σ", "b", "σ", "i"], u32::MAX));
        // li cannot appear under p (not reachable from any inline member).
        assert!(!ecpv(&analysis, "p", &["li"], u32::MAX));
    }

    #[test]
    fn ordered_model_rejects_out_of_order() {
        let analysis = BuiltinDtd::XhtmlBasic.analysis();
        // html → (head, body): body before head is a hard violation.
        assert!(!ecpv(&analysis, "html", &["body", "head"], u32::MAX));
        assert!(ecpv(&analysis, "html", &["head", "body"], u32::MAX));
        assert!(ecpv(&analysis, "html", &["body"], u32::MAX)); // head elidable
        // title (inside head) then body: title commits into elided head.
        assert!(ecpv(&analysis, "html", &["title", "body"], u32::MAX));
        // but body then title is unfixable.
        assert!(!ecpv(&analysis, "html", &["body", "title"], u32::MAX));
    }

    #[test]
    fn stats_accumulate() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let dags = DagSet::new(&analysis);
        let ctx = RecCtx::new(&analysis, &dags);
        let mut stats = RecognizerStats::default();
        let a = analysis.id("a").unwrap();
        let b = analysis.id("b").unwrap();
        let mut rec = EcRecognizer::new(ctx, a, u32::MAX);
        rec.recognize([ChildSym::Elem(b), ChildSym::Sigma], &mut stats);
        assert_eq!(stats.symbols, 2);
        assert!(stats.node_visits >= 2);
    }
}
