//! The `δ_T` and `Δ_T` operators (paper Sections 3.1 and 4).
//!
//! * `δ_T` maps an XML string to a token string over the grammar alphabet
//!   `Σ = {σ} ∪ {<x>, </x> | x ∈ T}`: markup structure is preserved and
//!   every maximal run of (non-empty) character data collapses to one `σ`.
//! * `Δ_T` is the per-node variant: the root's tags around the **children
//!   only**, each child element reduced to an empty tag pair — the input
//!   alphabet of the element-content recognizer.
//!
//! Both operators resolve document tag names against the DTD; an element
//! not declared in `T` violates the problem precondition
//! (`elements(w) ⊆ T`) and is reported as a [`TokenError`].

use pv_dtd::{Dtd, ElemId};
use pv_xml::{Document, NodeId};
use std::fmt;

/// One terminal of the grammar alphabet `Σ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tok {
    /// Start tag `<x>`.
    Open(ElemId),
    /// End tag `</x>`.
    Close(ElemId),
    /// A non-empty character-data run.
    Sigma,
}

/// One symbol of a node's **child** sequence (the recognizer's input
/// alphabet: elements and σ, no tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChildSym {
    /// A child element of the given type.
    Elem(ElemId),
    /// A character-data run.
    Sigma,
}

impl ChildSym {
    /// Pretty-prints against a DTD (for diagnostics).
    pub fn display(&self, dtd: &Dtd) -> String {
        match self {
            ChildSym::Elem(id) => format!("<{}>", dtd.name(*id)),
            ChildSym::Sigma => "σ".to_owned(),
        }
    }
}

/// A document element whose tag name is not declared in the DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenError {
    /// The undeclared tag name.
    pub name: String,
    /// The node carrying it.
    pub node: NodeId,
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "element <{}> at node {} is not declared in the DTD", self.name, self.node)
    }
}

impl std::error::Error for TokenError {}

/// Token-string construction (`δ_T`, `Δ_T`) over a `(Document, Dtd)` pair.
pub struct Tokens;

impl Tokens {
    /// `δ_T(w)` of the subtree rooted at `node`: the full token string with
    /// all markup and collapsed character data (paper Section 3.1).
    pub fn delta(doc: &Document, node: NodeId, dtd: &Dtd) -> Result<Vec<Tok>, TokenError> {
        let mut out = Vec::new();
        // Iterative traversal; mirrors Document::descendants but emits
        // Close tokens and merges sibling text runs.
        enum Step {
            Enter(NodeId),
            Close(ElemId),
        }
        let mut stack = vec![Step::Enter(node)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Close(id) => out.push(Tok::Close(id)),
                Step::Enter(n) => {
                    let nd = doc.node(n);
                    match &nd.kind {
                        pv_xml::NodeKind::Text(t)
                            if !t.is_empty() && out.last() != Some(&Tok::Sigma) => {
                                out.push(Tok::Sigma);
                            }
                        pv_xml::NodeKind::Element { name, .. } => {
                            let id = dtd.id(name).ok_or_else(|| TokenError {
                                name: name.to_string(),
                                node: n,
                            })?;
                            out.push(Tok::Open(id));
                            stack.push(Step::Close(id));
                            for &c in nd.children.iter().rev() {
                                stack.push(Step::Enter(c));
                            }
                        }
                        // Comments/PIs are structure-transparent.
                        _ => {}
                    }
                }
            }
        }
        Ok(out)
    }

    /// The child-symbol sequence of element `node` — the essential content
    /// of `Δ_T` (paper Section 4) without the enclosing tags. This is the
    /// ECRecognizer's input for one ECPV instance.
    pub fn children(
        doc: &Document,
        node: NodeId,
        dtd: &Dtd,
    ) -> Result<Vec<ChildSym>, TokenError> {
        let mut out = Vec::with_capacity(doc.children(node).len());
        Self::children_into(doc, node, dtd, &mut out)?;
        Ok(out)
    }

    /// Scratch-buffer variant of [`Tokens::children`]: clears `out` and
    /// fills it with the node's child-symbol sequence. The whole-document
    /// checker calls this once per element node with one reusable buffer,
    /// so the per-node hot path performs no allocation at all (the
    /// `Vec`-returning variant, and the intermediate
    /// [`pv_xml::ChildToken`] vector it used to build, are both avoided).
    ///
    /// Semantics are identical to [`Tokens::children`]: child elements
    /// resolve against the DTD (undeclared names error), maximal runs of
    /// non-empty character data collapse to one σ, and comments/PIs are
    /// transparent — σ runs merge *across* them, mirroring `δ_T`.
    pub fn children_into(
        doc: &Document,
        node: NodeId,
        dtd: &Dtd,
        out: &mut Vec<ChildSym>,
    ) -> Result<(), TokenError> {
        out.clear();
        for &c in doc.children(node) {
            match &doc.node(c).kind {
                pv_xml::NodeKind::Element { name, .. } => {
                    let elem = dtd
                        .id(name)
                        .ok_or_else(|| TokenError { name: name.to_string(), node: c })?;
                    out.push(ChildSym::Elem(elem));
                }
                pv_xml::NodeKind::Text(t)
                    if !t.is_empty() && out.last() != Some(&ChildSym::Sigma) =>
                {
                    out.push(ChildSym::Sigma);
                }
                // Comments/PIs carry no structure; σ runs merge across
                // them exactly as `children` always reported.
                _ => {}
            }
        }
        Ok(())
    }

    /// Renders a δ token string for diagnostics/tests, e.g.
    /// `<a><b>σ</b></a>`.
    pub fn render(toks: &[Tok], dtd: &Dtd) -> String {
        let mut s = String::new();
        for t in toks {
            match t {
                Tok::Open(id) => {
                    s.push('<');
                    s.push_str(dtd.name(*id));
                    s.push('>');
                }
                Tok::Close(id) => {
                    s.push_str("</");
                    s.push_str(dtd.name(*id));
                    s.push('>');
                }
                Tok::Sigma => s.push('σ'),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_dtd::builtin::BuiltinDtd;

    fn fig1() -> pv_dtd::Dtd {
        BuiltinDtd::Figure1.dtd()
    }

    #[test]
    fn delta_matches_paper_example() {
        // Section 3.1's worked example.
        let doc = pv_xml::parse(
            "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>",
        )
        .unwrap();
        let dtd = fig1();
        let a = doc.children(doc.root())[0];
        let toks = Tokens::delta(&doc, a, &dtd).unwrap();
        assert_eq!(Tokens::render(&toks, &dtd), "<a><b>σ</b><c>σ</c><d>σ<e></e></d></a>");
    }

    #[test]
    fn delta_collapses_adjacent_text() {
        let mut doc = pv_xml::parse("<d></d>").unwrap();
        doc.append_text(doc.root(), "one").unwrap();
        doc.append_text(doc.root(), "two").unwrap();
        let dtd = fig1();
        let toks = Tokens::delta(&doc, doc.root(), &dtd).unwrap();
        assert_eq!(Tokens::render(&toks, &dtd), "<d>σ</d>");
    }

    #[test]
    fn delta_drops_empty_text() {
        let mut doc = pv_xml::parse("<d></d>").unwrap();
        doc.append_text(doc.root(), "").unwrap();
        let dtd = fig1();
        let toks = Tokens::delta(&doc, doc.root(), &dtd).unwrap();
        assert_eq!(toks, vec![Tok::Open(dtd.id("d").unwrap()), Tok::Close(dtd.id("d").unwrap())]);
    }

    #[test]
    fn children_matches_paper_delta_example() {
        // Section 4: Δ_T of string w is <a><b></b><e></e><c></c>σ</a>;
        // our child view is the inner symbol sequence b, e, c, σ.
        let doc = pv_xml::parse(
            "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>",
        )
        .unwrap();
        let dtd = fig1();
        let a = doc.children(doc.root())[0];
        let syms = Tokens::children(&doc, a, &dtd).unwrap();
        let rendered: Vec<String> = syms.iter().map(|s| s.display(&dtd)).collect();
        assert_eq!(rendered, ["<b>", "<e>", "<c>", "σ"]);
    }

    #[test]
    fn children_into_matches_children_and_reuses_buffer() {
        let doc = pv_xml::parse(
            "<r><a><b>A quick brown</b>mid<!-- note -->dle<e></e><c>x</c> dog</a></r>",
        )
        .unwrap();
        let dtd = fig1();
        let a = doc.children(doc.root())[0];
        let mut buf = vec![ChildSym::Sigma; 8]; // stale contents must be cleared
        Tokens::children_into(&doc, a, &dtd, &mut buf).unwrap();
        assert_eq!(buf, Tokens::children(&doc, a, &dtd).unwrap());
        // σ runs merge across the comment: b, σ, e, c, σ.
        assert_eq!(buf.len(), 5);
        // And the buffer is reusable for a different node.
        Tokens::children_into(&doc, doc.root(), &dtd, &mut buf).unwrap();
        assert_eq!(buf, Tokens::children(&doc, doc.root(), &dtd).unwrap());
    }

    #[test]
    fn undeclared_element_is_reported() {
        let doc = pv_xml::parse("<r><zz/></r>").unwrap();
        let dtd = fig1();
        let err = Tokens::delta(&doc, doc.root(), &dtd).unwrap_err();
        assert_eq!(err.name, "zz");
        let err2 = Tokens::children(&doc, doc.root(), &dtd).unwrap_err();
        assert_eq!(err2.name, "zz");
    }

    #[test]
    fn comments_are_transparent() {
        let doc = pv_xml::parse("<d>one<!-- note -->two</d>").unwrap();
        let dtd = fig1();
        let toks = Tokens::delta(&doc, doc.root(), &dtd).unwrap();
        // Text runs on both sides of the comment merge into one σ in δ_T
        // (the comment carries no structure).
        assert_eq!(Tokens::render(&toks, &dtd), "<d>σ</d>");
    }

    #[test]
    fn deep_document_tokenizes() {
        let mut src = String::new();
        let n = 30_000;
        for _ in 0..n {
            src.push_str("<a>");
        }
        for _ in 0..n {
            src.push_str("</a>");
        }
        let dtd = pv_dtd::Dtd::parse("<!ELEMENT a (a?)>").unwrap();
        let doc = pv_xml::parse(&src).unwrap();
        let toks = Tokens::delta(&doc, doc.root(), &dtd).unwrap();
        assert_eq!(toks.len(), 2 * n);
    }
}
