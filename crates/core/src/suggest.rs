//! Editing assistance queries — the guidance side of the paper's xTagger
//! editor \[10\]: not just *"is this edit legal?"* but *"what could come
//! next?"*.
//!
//! [`expected_next`] answers: given the children already present under an
//! element (a prefix the recognizer accepts), which symbols could be
//! appended while staying potentially valid? A tag palette greys out
//! everything else; σ in the result means "typing text here is fine".
//!
//! The query replays the prefix once per candidate symbol (`O(m·n)` per
//! call); editor-scale nodes keep this interactive. A clever implementation
//! could snapshot the recognizer state instead, but candidate counts are
//! tiny (`m + 1`).

use crate::checker::PvChecker;
use crate::recognizer::{EcRecognizer, RecognizerStats};
use crate::token::{ChildSym, Tokens};
use pv_dtd::ElemId;
use pv_xml::{Document, NodeId};

/// Symbols that may follow `prefix` in the content of `elem` while keeping
/// it potentially valid. σ is included when character data may follow.
pub fn expected_next(
    checker: &PvChecker<'_>,
    elem: ElemId,
    prefix: &[ChildSym],
) -> Vec<ChildSym> {
    let analysis = checker.analysis();
    let ctx = checker.rec_ctx();
    let mut out = Vec::new();
    let candidates = analysis
        .dtd
        .ids()
        .map(ChildSym::Elem)
        .chain([ChildSym::Sigma]);
    for cand in candidates {
        // σσ is not a δ string; an appended σ merges with a trailing run.
        if cand == ChildSym::Sigma && prefix.last() == Some(&ChildSym::Sigma) {
            continue;
        }
        let mut stats = RecognizerStats::default();
        let mut rec = EcRecognizer::new(ctx, elem, checker.depth());
        let mut ok = true;
        for &p in prefix {
            if !rec.validate(p, &mut stats) {
                ok = false;
                break;
            }
        }
        if ok && rec.validate(cand, &mut stats) {
            out.push(cand);
        }
    }
    out
}

/// Convenience wrapper over a live document node: which symbols could be
/// appended to `node`'s children?
pub fn expected_next_for_node(
    checker: &PvChecker<'_>,
    doc: &Document,
    node: NodeId,
) -> Option<Vec<ChildSym>> {
    let analysis = checker.analysis();
    let elem = analysis.id(doc.name(node)?)?;
    let prefix = Tokens::children(doc, node, &analysis.dtd).ok()?;
    Some(expected_next(checker, elem, &prefix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_dtd::builtin::BuiltinDtd;

    fn names(analysis: &pv_dtd::DtdAnalysis, syms: &[ChildSym]) -> Vec<String> {
        let mut v: Vec<String> = syms.iter().map(|s| s.display(&analysis.dtd)).collect();
        v.sort();
        v
    }

    #[test]
    fn figure1_a_suggestions_follow_the_model() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let a = analysis.id("a").unwrap();
        let b = analysis.id("b").unwrap();
        let e = analysis.id("e").unwrap();

        // Empty prefix: everything reachable can start (b, c, f directly;
        // d; e and σ through elisions).
        let start = expected_next(&checker, a, &[]);
        let labels = names(&analysis, &start);
        assert!(labels.contains(&"<b>".to_owned()));
        assert!(labels.contains(&"<c>".to_owned()));
        assert!(labels.contains(&"σ".to_owned()));

        // After b, e: Figure 6(A) says c can no longer come.
        let after_be =
            expected_next(&checker, a, &[ChildSym::Elem(b), ChildSym::Elem(e)]);
        let labels = names(&analysis, &after_be);
        assert!(!labels.contains(&"<c>".to_owned()), "{labels:?}");
        assert!(!labels.contains(&"<f>".to_owned()), "{labels:?}");
        // …but d-content symbols still can.
        assert!(labels.contains(&"<e>".to_owned()));
        assert!(labels.contains(&"σ".to_owned()));
    }

    #[test]
    fn empty_content_suggests_nothing() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let e = analysis.id("e").unwrap();
        assert!(expected_next(&checker, e, &[]).is_empty());
    }

    #[test]
    fn sigma_not_suggested_after_sigma() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let d = analysis.id("d").unwrap();
        let next = expected_next(&checker, d, &[ChildSym::Sigma]);
        assert!(!next.contains(&ChildSym::Sigma));
        assert!(next.contains(&ChildSym::Elem(analysis.id("e").unwrap())));
    }

    #[test]
    fn node_wrapper_resolves_prefix() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let checker = PvChecker::new(&analysis);
        let doc = pv_xml::parse("<r><a><b/></a></r>").unwrap();
        let a = doc.children(doc.root())[0];
        let next = expected_next_for_node(&checker, &doc, a).unwrap();
        let labels = names(&analysis, &next);
        assert!(labels.contains(&"<c>".to_owned()));
        assert!(!labels.contains(&"<b>".to_owned()), "b cannot repeat: {labels:?}");
    }

    #[test]
    fn suggestions_are_sound() {
        // Every suggested symbol, when appended, must keep the content
        // potentially valid per the full checker.
        let analysis = BuiltinDtd::TeiLite.analysis();
        let checker = PvChecker::new(&analysis);
        let div = analysis.id("div").unwrap();
        let head = analysis.id("head").unwrap();
        let prefix = vec![ChildSym::Elem(head)];
        for cand in expected_next(&checker, div, &prefix) {
            let mut seq = prefix.clone();
            seq.push(cand);
            let mut stats = RecognizerStats::default();
            assert!(
                checker.check_symbols(div, &seq, &mut stats).is_none(),
                "suggested {} breaks the content",
                cand.display(&analysis.dtd)
            );
        }
    }
}
