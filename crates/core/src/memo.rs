//! Shape-memoized ECPV verdicts: the checker's cache layer.
//!
//! Real document-centric markup is massively repetitive — thousands of
//! element nodes share the same **shape** `(element type, child-symbol
//! sequence)`, and Problem ECPV is a pure function of exactly that pair
//! (plus the checker's fixed DTD analysis and depth budget). This module
//! hash-conses child-symbol sequences into interned [`ShapeId`]s and caches
//! `(ElemId, ShapeId) → (verdict, stats delta)` so a repeated shape costs
//! one hash lookup instead of a recognizer walk.
//!
//! ## Bit-identity
//!
//! A cache hit must be observationally invisible: the checker's
//! [`PvOutcome`](crate::checker::PvOutcome) — including every
//! [`RecognizerStats`] counter — has to come out identical with the memo
//! on, off, cold, or warm. Two properties make that hold:
//!
//! 1. the recognizer is deterministic, so for a fixed checker the verdict
//!    *and the work counters* of a `(elem, shape)` run are a function of
//!    the key; the cache stores the counters as a **stats delta** and a hit
//!    *replays* the delta into the caller's accumulator, reproducing
//!    exactly what the uncached run would have added;
//! 2. the failing position of a rejected shape is a symbol index into the
//!    sequence, which is node-independent; the caller re-renders the
//!    failing symbol's display string from its own sequence.
//!
//! ## Concurrency
//!
//! The cache is shared by reference across the parallel checker's workers
//! ([`PvChecker::check_document_parallel`](crate::checker::PvChecker::check_document_parallel)),
//! so it is sharded: a deterministic hash of the symbol sequence picks one
//! of [`SHARD_COUNT`] shards, each behind its own `RwLock` — hits take a
//! read lock (read-mostly by design), only misses write. Races are benign:
//! two workers missing on the same shape insert the *same* entry (the
//! recognizer is deterministic), so insertion order can only affect the
//! hit/miss telemetry, never an outcome.
//!
//! ## Bounded growth
//!
//! Adversarial inputs (every node a distinct shape) would otherwise grow
//! the cache without limit, so each shard holds at most its share of the
//! configured capacity; inserting into a full shard flushes that shard
//! (interner and verdicts together — the interned ids are shard-local) and
//! starts it over. Flushing only costs re-derivation, never correctness.

use crate::recognizer::RecognizerStats;
use crate::token::ChildSym;
use pv_dtd::ElemId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// rustc-style Fx hash. The cache hashes a node's whole child-symbol
/// sequence on *every* lookup, so hashing is the dominant cost of both a
/// hit and the adversarial all-miss regime; SipHash there costs more than
/// the bound the benchmarks budget for cache overhead. Fx is a few
/// multiplies per symbol, deterministic (shard selection needs the same
/// hash on every thread), and its non-resistance to crafted collisions is
/// irrelevant here: a collision only degrades a bounded, flushable cache's
/// hit rate, never an outcome.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// One interner bucket: the (in practice singleton) list of shapes whose
/// sequences share a hash value.
type ShapeChain = Vec<(Box<[ChildSym]>, ShapeId)>;

/// An interned child-symbol sequence (shard-local; see the module docs).
/// Exposed only through [`ShapeCache`] internals and
/// [`MemoStats::shapes`] — the id itself never leaves the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeId(u32);

/// Number of independently locked shards.
pub const SHARD_COUNT: usize = 16;

/// Default total capacity (entries across all shards) of a
/// [`ShapeCache`]; see [`ShapeCache::with_capacity`].
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 16;

/// The memoized result of one `(element, shape)` ECPV run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoVerdict {
    /// Index of the rejected symbol within the shape, or `None` when the
    /// content is potentially valid.
    pub failing: Option<u32>,
    /// The exact [`RecognizerStats`] the uncached run accumulated; a hit
    /// replays this delta so counters stay bit-identical.
    pub stats: RecognizerStats,
}

#[derive(Default)]
struct Shard {
    /// The interner, keyed by the **precomputed** sequence hash so a probe
    /// hashes the sequence exactly once (shard selection reuses the same
    /// value; a `HashMap<Box<[ChildSym]>, _>` would re-hash the whole
    /// sequence on every map operation). Each bucket is the — in practice
    /// singleton — list of shapes sharing the hash; equality on the stored
    /// sequence keeps a collision a slow path, never a wrong answer.
    shapes: HashMap<u64, ShapeChain, FxBuild>,
    /// The verdict table over interned shapes (8-byte keys: cheap to
    /// hash).
    verdicts: HashMap<(ElemId, ShapeId), MemoVerdict, FxBuild>,
    /// Next shard-local [`ShapeId`]; reset on flush.
    next_shape: u32,
}

impl Shard {
    /// Finds the interned id of `syms` given its precomputed hash.
    fn shape_of(&self, hash: u64, syms: &[ChildSym]) -> Option<ShapeId> {
        let chain = self.shapes.get(&hash)?;
        chain.iter().find(|(seq, _)| seq.as_ref() == syms).map(|&(_, sid)| sid)
    }
}

/// A sharded, bounded, read-mostly cache of ECPV verdicts keyed by
/// `(element type, interned child-symbol shape)`.
///
/// One cache belongs to one [`PvChecker`](crate::checker::PvChecker)
/// (verdicts depend on its DTD analysis and depth budget, both fixed at
/// construction) and lives as long as the checker — which is what makes
/// editor sessions amortized: the guards' re-checks of unchanged shapes
/// become hash lookups across edits.
pub struct ShapeCache {
    shards: Vec<RwLock<Shard>>,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    flushes: AtomicU64,
    /// Registry mirrors of the three counters above — no-op handles
    /// unless [`ShapeCache::instrument`] was called, so the uninstrumented
    /// lookup path pays a null-check and nothing more.
    obs_hits: pv_obs::Counter,
    obs_misses: pv_obs::Counter,
    obs_flushes: pv_obs::Counter,
}

/// Telemetry snapshot of a [`ShapeCache`] (see
/// [`PvChecker::memo_stats`](crate::checker::PvChecker::memo_stats)).
///
/// Hit/miss counts are telemetry, not semantics: under parallel checking
/// two workers can race to the same cold shape and both count a miss, so
/// these numbers may vary across schedules while outcomes never do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the recognizer.
    pub misses: u64,
    /// Verdict entries currently resident.
    pub entries: usize,
    /// Distinct interned shapes currently resident.
    pub shapes: usize,
    /// Shard flushes forced by the capacity bound.
    pub flushes: u64,
}

impl MemoStats {
    /// Fraction of lookups answered from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ShapeCache {
    /// A cache with the default capacity ([`DEFAULT_MEMO_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// A cache bounded to roughly `capacity` verdict entries in total
    /// (each of the [`SHARD_COUNT`] shards gets an equal share, minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        ShapeCache {
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(Shard::default())).collect(),
            cap_per_shard: (capacity / SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            obs_hits: pv_obs::Counter::default(),
            obs_misses: pv_obs::Counter::default(),
            obs_flushes: pv_obs::Counter::default(),
        }
    }

    /// Mirrors hit/miss/flush telemetry into `registry`
    /// (`pv_engine_memo_{hits,misses,flushes}_total`). Every instrumented
    /// cache in a process shares those registry cells, so the counters
    /// aggregate across loaded DTDs. Adds one relaxed atomic add per
    /// lookup when the registry is enabled; a disabled registry keeps
    /// the handles as no-ops.
    pub fn instrument(&mut self, registry: &pv_obs::Registry) {
        self.obs_hits = registry.counter("pv_engine_memo_hits_total");
        self.obs_misses = registry.counter("pv_engine_memo_misses_total");
        self.obs_flushes = registry.counter("pv_engine_memo_flushes_total");
    }

    /// Zeroes the hit/miss/flush counters (entries are untouched — use
    /// [`ShapeCache::clear`] for those). The service's `RESET` verb uses
    /// both to open a fresh telemetry window.
    pub fn reset_telemetry(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
    }

    /// The deterministic sequence hash: seed-free Fx, identical on every
    /// thread, computed **once** per cache operation and reused for both
    /// shard selection and the interner probe.
    fn seq_hash(syms: &[ChildSym]) -> u64 {
        let mut h = FxHasher::default();
        syms.hash(&mut h);
        h.finish()
    }

    /// Shard for a precomputed sequence hash. Fx mixes poorly in the low
    /// bits; take the top ones so the shard index does not correlate with
    /// the interner's in-map bucket index.
    fn shard_for(&self, hash: u64) -> &RwLock<Shard> {
        &self.shards[(hash >> 56) as usize % SHARD_COUNT]
    }

    /// Looks up the verdict for `(elem, syms)`. Counts a hit or a miss.
    /// A hit costs one sequence hash, one read lock, and two 8-byte-key
    /// probes.
    pub fn lookup(&self, elem: ElemId, syms: &[ChildSym]) -> Option<MemoVerdict> {
        let hash = Self::seq_hash(syms);
        let shard = self.shard_for(hash).read().expect("memo shard poisoned");
        let found = shard
            .shape_of(hash, syms)
            .and_then(|sid| shard.verdicts.get(&(elem, sid)))
            .copied();
        drop(shard);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.inc();
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs_misses.inc();
                None
            }
        }
    }

    /// Records the verdict for `(elem, syms)`, interning the shape if it
    /// is new. A full shard is flushed first (capacity bound).
    pub fn insert(&self, elem: ElemId, syms: &[ChildSym], verdict: MemoVerdict) {
        let hash = Self::seq_hash(syms);
        let mut guard = self.shard_for(hash).write().expect("memo shard poisoned");
        let shard = &mut *guard;
        if shard.verdicts.len() >= self.cap_per_shard {
            shard.shapes.clear();
            shard.verdicts.clear();
            shard.next_shape = 0;
            self.flushes.fetch_add(1, Ordering::Relaxed);
            self.obs_flushes.inc();
        }
        let chain = shard.shapes.entry(hash).or_default();
        let sid = match chain.iter().find(|(seq, _)| seq.as_ref() == syms) {
            Some(&(_, sid)) => sid,
            None => {
                let sid = ShapeId(shard.next_shape);
                shard.next_shape += 1;
                chain.push((syms.to_vec().into_boxed_slice(), sid));
                sid
            }
        };
        shard.verdicts.insert((elem, sid), verdict);
    }

    /// Drops every entry (interner and verdicts), keeping the telemetry
    /// counters. Used by benchmarks to measure cold-cache behaviour.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.write().expect("memo shard poisoned");
            s.shapes.clear();
            s.verdicts.clear();
            s.next_shape = 0;
        }
    }

    /// A telemetry snapshot (entry counts walk the shards under read
    /// locks; counters are relaxed loads).
    pub fn stats(&self) -> MemoStats {
        let mut entries = 0usize;
        let mut shapes = 0usize;
        for shard in &self.shards {
            let s = shard.read().expect("memo shard poisoned");
            entries += s.verdicts.len();
            shapes += s.shapes.values().map(Vec::len).sum::<usize>();
        }
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            shapes,
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

impl Default for ShapeCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u32) -> Vec<ChildSym> {
        (0..n).map(|i| ChildSym::Elem(ElemId(i))).collect()
    }

    fn verdict(failing: Option<u32>) -> MemoVerdict {
        MemoVerdict {
            failing,
            stats: RecognizerStats { symbols: 3, node_visits: 7, subs_created: 1, specs_denied: 0 },
        }
    }

    #[test]
    fn lookup_miss_then_hit_roundtrips() {
        let cache = ShapeCache::new();
        let syms = seq(4);
        assert_eq!(cache.lookup(ElemId(0), &syms), None);
        cache.insert(ElemId(0), &syms, verdict(Some(2)));
        assert_eq!(cache.lookup(ElemId(0), &syms), Some(verdict(Some(2))));
        // Same shape, different element type: still a miss.
        assert_eq!(cache.lookup(ElemId(1), &syms), None);
        cache.insert(ElemId(1), &syms, verdict(None));
        assert_eq!(cache.lookup(ElemId(1), &syms), Some(verdict(None)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.shapes, 1, "one shape shared by two element types");
    }

    #[test]
    fn capacity_bound_flushes_rather_than_grows() {
        let cache = ShapeCache::with_capacity(SHARD_COUNT * 4);
        for i in 0..10_000u32 {
            cache.insert(ElemId(0), &seq(i % 97 + 1), verdict(None));
        }
        // Distinct lengths spread over shards; each shard stays at ≤ cap.
        let stats = cache.stats();
        assert!(stats.entries <= SHARD_COUNT * 4, "{stats:?}");
        assert!(stats.flushes > 0);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn empty_and_sigma_shapes_are_distinct_keys() {
        let cache = ShapeCache::new();
        cache.insert(ElemId(0), &[], verdict(None));
        assert_eq!(cache.lookup(ElemId(0), &[]), Some(verdict(None)));
        assert_eq!(cache.lookup(ElemId(0), &[ChildSym::Sigma]), None);
    }
}
