//! Streaming (push/SAX-style) front end: a resumable event lexer.
//!
//! [`PushParser`] accepts the document as byte chunks ([`PushParser::push`])
//! and emits [`Event`]s ([`PushParser::next_event`]) as soon as they are
//! complete, holding only the open-element name stack plus the bytes of the
//! one construct currently in flight. A chunk boundary may fall anywhere —
//! mid-tag, mid-name, inside an attribute value, between the bytes of a
//! UTF-8 sequence — and the lexer simply reports "need more input" until the
//! construct completes.
//!
//! ## Equivalence with the tree parser
//!
//! The event stream is the exact trace of [`crate::parse`]: same accepted
//! language, same error kinds at the same byte offsets, and one event chain
//! per node the tree parser would allocate, in allocation order (element
//! starts, one text chain per maximal character-data run, one per CDATA
//! section, comments and PIs inside the root). Prolog and trailing misc are
//! consumed but produce no events, exactly as the tree parser produces no
//! nodes for them. `tests/stream_torture.rs` holds this equivalence over
//! random documents, all chunkings, and all truncations.
//!
//! ## Memory
//!
//! Residency is `O(depth + largest single markup construct + chunk)`:
//! character data streams out in pieces (it never accumulates), while tags,
//! comments, CDATA sections, references and the doctype are buffered only
//! until their terminating delimiter arrives. (An unterminated reference or
//! giant comment therefore buffers until its delimiter — the tree parser
//! scans the rest of the input for the same delimiter, and matching its
//! verdict exactly requires waiting just as long.) Constructs interrupted
//! by a chunk boundary re-parse from their first byte when more input
//! arrives, so pathological 1-byte feeding costs O(construct²) time per
//! construct but never changes the result. Truncated input surfaces as a
//! clean [`XmlErrorKind::UnexpectedEof`]-family error from
//! [`PushParser::next_event`] after [`PushParser::finish`] — never as a
//! wrong event stream.
//!
//! ## Throughput
//!
//! The hot path is built around three techniques:
//!
//! * **Amortized compaction** — consumed bytes are dropped from the input
//!   buffer only when they outnumber the unconsumed remainder, so the
//!   total bytes ever memmoved is bounded by the total bytes consumed
//!   (O(1) per input byte) instead of O(remainder) per *event*. The
//!   buffer's allocation stays within ~2× the unconsumed high-water mark;
//!   [`PushParser::peak_buffered`] reports the unconsumed bytes, which is
//!   the residency claim that matters.
//! * **Skip-scanning** — character data (and attribute values) advance by
//!   a single byte-level forward scan to the next delimiter (`<`/`&`, or
//!   the closing quote) rather than per-character decoding; the needles
//!   are ASCII, so scanning raw UTF-8 bytes is exact.
//! * **Zero-copy text and a name arena** — a character-data segment with
//!   no references is emitted as a borrowed range of the input buffer
//!   (never copied into scratch), and open-element names live
//!   concatenated in one rotating arena (`names` + per-level start
//!   offsets) instead of one heap `String` per open element.

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::{is_name_char, is_name_start, resolve_reference, validate_name};
use crate::parser::ParseOptions;
use crate::tree::{Attribute, Doctype};
use crate::Result;
use std::ops::Range;

/// One SAX-style event. Borrows from the parser's internal buffers; the
/// borrow ends at the next [`PushParser`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// A start tag (or an empty-element tag when `self_closing`; no
    /// matching [`Event::End`] is emitted for those).
    Start {
        /// Element name.
        name: &'a str,
        /// Parsed attributes, references resolved.
        attrs: &'a [Attribute],
        /// `true` for `<x/>` — open and close in one event.
        self_closing: bool,
    },
    /// An end tag (already verified to match the open element).
    End {
        /// Element name.
        name: &'a str,
    },
    /// A piece of character data. One maximal run (or one CDATA section)
    /// corresponds to one text *node* of the tree parser and arrives as one
    /// or more pieces; `first` marks the piece that begins the node.
    Text {
        /// Resolved character data (empty only for an empty CDATA section,
        /// which the tree parser stores as an empty text node).
        piece: &'a str,
        /// `true` iff this piece starts a new text node.
        first: bool,
    },
    /// A comment inside the root element (prolog/trailing comments are
    /// consumed silently, as the tree parser drops them).
    Comment {
        /// Comment body.
        text: &'a str,
    },
    /// A processing instruction inside the root element.
    Pi {
        /// PI target.
        target: &'a str,
        /// PI data (leading whitespace trimmed, as in the tree parser).
        data: &'a str,
    },
}

/// Where the state machine stands between events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// At absolute offset 0: an XML declaration may start here.
    Decl,
    /// Prolog misc + doctype, before the root element.
    Prolog,
    /// Inside the document: expecting markup or character data.
    Content,
    /// Mid character-data run.
    CharData,
    /// After the root element closed: trailing misc only.
    Epilog,
    /// Document complete.
    Done,
}

/// Internal control flow: a step either needs more input or fails.
enum Halt {
    /// The current construct extends past the buffered input.
    More,
    /// A well-formedness error (final).
    Fail(XmlError),
}

type Step<T> = std::result::Result<T, Halt>;

/// An event with borrow-free payload locations, produced by the state
/// machine and converted to a borrowing [`Event`] by [`PushParser`].
enum Raw {
    Start { name: Range<usize>, self_closing: bool },
    /// End tag; `start` is the popped name's offset into the name arena
    /// (the arena is truncated back to it on the *next* event, so the
    /// borrow in [`Event::End`] stays valid).
    End { start: usize },
    TextScratch { first: bool },
    TextBuf { piece: Range<usize>, first: bool },
    Comment { text: Range<usize> },
    Pi { target: Range<usize>, data: Range<usize> },
}

/// A resumable push parser: feed byte chunks, pull events. See the
/// [module docs](self).
pub struct PushParser {
    /// Buffered, validated input not yet consumed. `base` is the absolute
    /// offset of `buf[0]` in the original byte stream.
    buf: String,
    base: usize,
    /// Committed cursor into `buf`: everything before it belongs to fully
    /// parsed constructs. An attempt that runs out of input restarts here.
    pos: usize,
    /// Up to 3 bytes of a UTF-8 sequence split by a chunk boundary.
    utf8_tail: Vec<u8>,
    eof: bool,
    mode: Mode,
    options: ParseOptions,
    /// Open element names, concatenated (the name arena): element `i`'s
    /// name spans `names[name_starts[i]..name_starts[i + 1]]` (to the
    /// arena's end for the innermost). The only per-depth state the
    /// lexer holds, and allocation-free at steady state.
    names: String,
    /// Per-open-element start offsets into `names`.
    name_starts: Vec<usize>,
    /// Pending arena truncation: a popped end-tag name is kept alive for
    /// the borrow in [`Event::End`] and reclaimed on the next event.
    name_trunc: Option<usize>,
    root_seen: bool,
    doctype: Option<Doctype>,
    failed: Option<XmlError>,
    /// Scratch for the text piece being assembled. Only reference
    /// resolution writes here; plain character data is emitted as a
    /// borrowed range of `buf` without copying.
    text: String,
    text_emitted: bool,
    /// `true` once the current character-data run has emitted a piece.
    run_started: bool,
    /// Scratch for the attribute list of the current start tag.
    attrs: Vec<Attribute>,
    peak_buffered: usize,
}

impl Default for PushParser {
    fn default() -> Self {
        Self::new()
    }
}

impl PushParser {
    /// A fresh parser with default [`ParseOptions`].
    pub fn new() -> Self {
        Self::with_options(ParseOptions::default())
    }

    /// A fresh parser with explicit options (comment/PI events can be
    /// suppressed, mirroring the tree parser's node filtering).
    pub fn with_options(options: ParseOptions) -> Self {
        PushParser {
            buf: String::new(),
            base: 0,
            pos: 0,
            utf8_tail: Vec::new(),
            eof: false,
            mode: Mode::Decl,
            options,
            names: String::new(),
            name_starts: Vec::new(),
            name_trunc: None,
            root_seen: false,
            doctype: None,
            failed: None,
            text: String::new(),
            text_emitted: false,
            run_started: false,
            attrs: Vec::new(),
            peak_buffered: 0,
        }
    }

    /// Appends a chunk of input. Invalid UTF-8 is reported by the next
    /// [`PushParser::next_event`] call (chunk boundaries may split a
    /// multi-byte sequence; only genuinely malformed bytes fail).
    pub fn push(&mut self, chunk: &[u8]) {
        debug_assert!(!self.eof, "push after finish");
        if self.failed.is_some() {
            return;
        }
        let mut bytes = std::mem::take(&mut self.utf8_tail);
        bytes.extend_from_slice(chunk);
        match std::str::from_utf8(&bytes) {
            Ok(s) => self.buf.push_str(s),
            Err(e) => {
                let valid = e.valid_up_to();
                // from_utf8 already proved this prefix valid.
                self.buf.push_str(std::str::from_utf8(&bytes[..valid]).unwrap());
                if e.error_len().is_some() {
                    self.failed = Some(XmlError::new(
                        XmlErrorKind::Unexpected("invalid UTF-8".to_owned()),
                        self.base + self.buf.len(),
                    ));
                } else {
                    self.utf8_tail = bytes[valid..].to_vec();
                }
            }
        }
        self.note_buffered();
    }

    /// Samples the current residency — unconsumed buffered bytes plus any
    /// split UTF-8 tail — into the high-water mark. Called at every point
    /// residency can grow (after a push) or is about to shrink (after an
    /// event), so [`PushParser::peak_buffered`] is a true maximum.
    #[inline]
    fn note_buffered(&mut self) {
        let now = self.buf.len() - self.pos + self.utf8_tail.len();
        self.peak_buffered = self.peak_buffered.max(now);
    }

    /// Signals end of input. Subsequent [`PushParser::next_event`] calls
    /// drain the remaining events and then report completion (or the
    /// truncation error).
    pub fn finish(&mut self) {
        self.eof = true;
        if !self.utf8_tail.is_empty() && self.failed.is_none() {
            // The stream ended between the bytes of one character.
            self.failed = Some(XmlError::new(
                XmlErrorKind::UnexpectedEof,
                self.base + self.buf.len(),
            ));
        }
    }

    /// `true` once the whole document (including trailing misc) has been
    /// accepted. Only meaningful after [`PushParser::finish`].
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.mode == Mode::Done
    }

    /// The captured `<!DOCTYPE>` (available once the prolog has been
    /// consumed — at the latest when the first event arrives).
    #[inline]
    pub fn doctype(&self) -> Option<&Doctype> {
        self.doctype.as_ref()
    }

    /// High-water mark of buffered-but-unconsumed bytes — including any
    /// UTF-8 sequence split across a chunk boundary — over the whole
    /// parse, excluding the open-name arena. This is a true maximum:
    /// residency only grows inside [`PushParser::push`] and is sampled
    /// there after every append (even when bytes are parked in the UTF-8
    /// tail), and again after every event. The buffer's *allocation* may
    /// lag behind consumption by up to one compaction interval (~2× this
    /// figure); see the module docs on amortized compaction.
    #[inline]
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Current open-element depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.name_starts.len()
    }

    /// Pulls the next complete event.
    ///
    /// * `Ok(Some(event))` — one event; the borrow ends at the next call.
    /// * `Ok(None)` before [`PushParser::finish`] — the next construct is
    ///   incomplete; push more input.
    /// * `Ok(None)` after `finish` — the document parsed to completion
    ///   ([`PushParser::is_complete`] is `true`).
    /// * `Err(e)` — well-formedness error, exactly the error the tree
    ///   parser reports for the same input. The error is sticky.
    pub fn next_event(&mut self) -> Result<Option<Event<'_>>> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if let Some(n) = self.name_trunc.take() {
            // Reclaim the end-tag name whose borrow ended with the
            // previous event.
            self.names.truncate(n);
        }
        // Amortized compaction: drop consumed input only once it
        // outweighs the unconsumed remainder, so every byte is memmoved
        // at most once on average (a per-event unconditional drain is
        // O(remainder) per event — quadratic over a large document).
        // Absolute offsets survive via `base`.
        if self.pos > 0 && self.pos >= self.buf.len() - self.pos {
            self.buf.drain(..self.pos);
            self.base += self.pos;
            self.pos = 0;
        }
        if self.text_emitted {
            self.text.clear();
            self.text_emitted = false;
        }
        let mut m = Machine {
            s: &self.buf,
            eof: self.eof,
            keep_comments: self.options.keep_comments,
            keep_pis: self.options.keep_pis,
            base: self.base,
            p: self.pos,
            pos: &mut self.pos,
            mode: &mut self.mode,
            names: &mut self.names,
            name_starts: &mut self.name_starts,
            root_seen: &mut self.root_seen,
            doctype: &mut self.doctype,
            text: &mut self.text,
            run_started: &mut self.run_started,
            attrs: &mut self.attrs,
        };
        let raw = match m.run() {
            Ok(raw) => raw,
            Err(Halt::More) => {
                debug_assert!(!self.eof, "More at eof is unreachable");
                return Ok(None);
            }
            Err(Halt::Fail(e)) => {
                self.failed = Some(e.clone());
                return Err(e);
            }
        };
        self.note_buffered();
        Ok(raw.map(|raw| match raw {
            Raw::Start { name, self_closing } => Event::Start {
                name: &self.buf[name],
                attrs: &self.attrs,
                self_closing,
            },
            Raw::End { start } => {
                self.name_trunc = Some(start);
                Event::End { name: &self.names[start..] }
            }
            Raw::TextScratch { first } => {
                self.text_emitted = true;
                Event::Text { piece: &self.text, first }
            }
            Raw::TextBuf { piece, first } => Event::Text { piece: &self.buf[piece], first },
            Raw::Comment { text } => Event::Comment { text: &self.buf[text] },
            Raw::Pi { target, data } => {
                Event::Pi { target: &self.buf[target], data: &self.buf[data] }
            }
        }))
    }
}

/// The borrow-split working state of one [`PushParser::next_event`] call:
/// an immutable view of the buffered input plus mutable references to the
/// parser state, with a local uncommitted cursor `p`.
struct Machine<'m> {
    s: &'m str,
    eof: bool,
    keep_comments: bool,
    keep_pis: bool,
    base: usize,
    /// Working cursor (uncommitted).
    p: usize,
    /// Committed cursor: restart point after [`Halt::More`].
    pos: &'m mut usize,
    mode: &'m mut Mode,
    names: &'m mut String,
    name_starts: &'m mut Vec<usize>,
    root_seen: &'m mut bool,
    doctype: &'m mut Option<Doctype>,
    text: &'m mut String,
    run_started: &'m mut bool,
    attrs: &'m mut Vec<Attribute>,
}

impl Machine<'_> {
    // ---- cursor helpers ---------------------------------------------------

    #[inline]
    fn abs(&self) -> usize {
        self.base + self.p
    }

    #[inline]
    fn commit(&mut self) {
        *self.pos = self.p;
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.s.as_bytes().get(self.p).copied()
    }

    /// Like `peek`, but `None` only at true end of input; running out of
    /// *buffered* input asks for more.
    #[inline]
    fn peek_or(&self) -> Step<Option<u8>> {
        match self.peek() {
            Some(b) => Ok(Some(b)),
            None if self.eof => Ok(None),
            None => Err(Halt::More),
        }
    }

    /// Three-valued `starts_with`: undecidable prefixes ask for more input
    /// (at eof they resolve to a plain mismatch, as the tree parser sees).
    fn lit(&self, t: &str) -> Step<bool> {
        let rest = &self.s.as_bytes()[self.p..];
        if rest.len() >= t.len() {
            return Ok(rest.starts_with(t.as_bytes()));
        }
        if !self.eof && t.as_bytes().starts_with(rest) {
            Err(Halt::More)
        } else {
            Ok(false)
        }
    }

    fn expect_lit(&mut self, t: &str) -> Step<()> {
        if self.lit(t)? {
            self.p += t.len();
            Ok(())
        } else {
            Err(self.err_unexpected(&format!("input (expected {t:?})")))
        }
    }

    fn err_unexpected(&self, what: &str) -> Halt {
        Halt::Fail(XmlError::new(XmlErrorKind::Unexpected(what.to_owned()), self.abs()))
    }

    fn err_eof(&self) -> Halt {
        Halt::Fail(XmlError::new(XmlErrorKind::UnexpectedEof, self.abs()))
    }

    fn fail(&self, kind: XmlErrorKind, at: usize) -> Halt {
        Halt::Fail(XmlError::new(kind, at))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.p += 1;
        }
    }

    /// Finds `needle` from the cursor, returning its offset relative to the
    /// cursor. Not-found means "more input" until eof, then the tree
    /// parser's `UnexpectedEof` at the cursor.
    fn find(&self, needle: &str) -> Step<usize> {
        match self.s[self.p..].find(needle) {
            Some(i) => Ok(i),
            None if self.eof => Err(self.err_eof()),
            None => Err(Halt::More),
        }
    }

    /// Consumes an XML name, returning its byte range in the buffer.
    fn name(&mut self) -> Step<Range<usize>> {
        let start = self.p;
        let rest = &self.s[self.p..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            _ => {
                // The tree parser's InvalidName message carries the next
                // (up to) 8 characters; wait for them (or eof) so the error
                // is byte-identical.
                if !self.eof && rest.chars().take(8).count() < 8 {
                    return Err(Halt::More);
                }
                return Err(self.fail(
                    XmlErrorKind::InvalidName(rest.chars().take(8).collect()),
                    self.abs(),
                ));
            }
        }
        for (i, c) in chars {
            if !is_name_char(c) {
                self.p = start + i;
                return Ok(start..self.p);
            }
        }
        // The name runs to the end of buffered input: complete only at eof.
        if self.eof {
            self.p = self.s.len();
            Ok(start..self.p)
        } else {
            Err(Halt::More)
        }
    }

    /// Resolves a `&…;` reference at the cursor (which sits on the `&`),
    /// mirroring the tree parser's scan-to-semicolon semantics.
    fn reference(&mut self) -> Step<char> {
        let amp = self.abs();
        self.p += 1; // past '&'
        let semi = match self.s[self.p..].find(';') {
            Some(i) => i,
            // The tree parser scans the rest of the whole input for ';'
            // before giving up, so we must wait just as long.
            None if self.eof => return Err(self.err_eof()),
            None => return Err(Halt::More),
        };
        let body = &self.s[self.p..self.p + semi];
        let ch = resolve_reference(body, amp).map_err(Halt::Fail)?;
        self.p += semi + 1;
        Ok(ch)
    }

    // ---- the machine ------------------------------------------------------

    /// Runs until one event is complete, the document ends, input runs dry,
    /// or a well-formedness error surfaces.
    fn run(&mut self) -> Step<Option<Raw>> {
        loop {
            match *self.mode {
                Mode::Decl => self.decl()?,
                Mode::Prolog => self.prolog()?,
                Mode::Content => {
                    if let Some(raw) = self.content()? {
                        return Ok(Some(raw));
                    }
                }
                Mode::CharData => {
                    if let Some(raw) = self.char_data()? {
                        return Ok(Some(raw));
                    }
                }
                Mode::Epilog => self.epilog()?,
                Mode::Done => return Ok(None),
            }
        }
    }

    /// Optional XML declaration — recognized only as the very first bytes,
    /// by the exact `<?xml` prefix the tree parser tests.
    fn decl(&mut self) -> Step<()> {
        debug_assert_eq!(self.abs(), 0);
        if self.lit("<?xml")? {
            let close = self.find("?>")?;
            self.p += close + 2;
            self.commit();
        }
        *self.mode = Mode::Prolog;
        Ok(())
    }

    /// Prolog misc + doctype; produces no events (the tree parser keeps no
    /// nodes for these).
    fn prolog(&mut self) -> Step<()> {
        loop {
            self.skip_ws();
            self.commit();
            if self.lit("<!--")? {
                self.comment_body()?;
                self.commit();
            } else if self.lit("<!DOCTYPE")? {
                if self.doctype.is_some() {
                    return Err(self.err_unexpected("second <!DOCTYPE"));
                }
                let dt = self.doctype_decl()?;
                *self.doctype = Some(dt);
                self.commit();
            } else if self.lit("<?")? {
                self.pi_body()?;
                self.commit();
            } else {
                break;
            }
        }
        self.skip_ws();
        self.commit();
        match self.peek_or()? {
            Some(b'<') => {
                *self.mode = Mode::Content;
                Ok(())
            }
            Some(_) => Err(self.err_unexpected("character data before the root element")),
            None => Err(self.fail(XmlErrorKind::NoRootElement, self.abs())),
        }
    }

    /// One content construct: markup dispatch exactly in the tree parser's
    /// order. Returns `None` when the construct produced no event (dropped
    /// comment/PI, or a mode switch).
    fn content(&mut self) -> Step<Option<Raw>> {
        match self.peek_or()? {
            None => {
                return Err(if let Some(&st) = self.name_starts.last() {
                    self.fail(XmlErrorKind::UnclosedTag(self.names[st..].to_owned()), self.abs())
                } else {
                    self.fail(XmlErrorKind::NoRootElement, self.abs())
                });
            }
            Some(b'<') => {}
            Some(_) => {
                if self.name_starts.is_empty() {
                    return Err(self.err_unexpected("character data outside the root"));
                }
                *self.mode = Mode::CharData;
                *self.run_started = false;
                self.text.clear();
                return Ok(None);
            }
        }
        if self.lit("</")? {
            self.p += 2;
            let close_pos = self.abs();
            let name = self.name()?;
            self.skip_ws();
            self.expect_lit(">")?;
            let Some(&st) = self.name_starts.last() else {
                return Err(
                    self.fail(XmlErrorKind::UnopenedTag(self.s[name].to_owned()), close_pos)
                );
            };
            if self.names[st..] != self.s[name.clone()] {
                let open = self.names[st..].to_owned();
                let close = self.s[name].to_owned();
                return Err(self.fail(XmlErrorKind::MismatchedTag { open, close }, close_pos));
            }
            self.name_starts.pop();
            self.commit();
            if self.name_starts.is_empty() {
                *self.mode = Mode::Epilog;
            }
            // The arena still holds the popped name (truncated by the
            // caller after the event's borrow ends).
            Ok(Some(Raw::End { start: st }))
        } else if self.lit("<!--")? {
            let text = self.comment_body()?;
            self.commit();
            if !self.keep_comments {
                return Ok(None);
            }
            if self.name_starts.is_empty() {
                // The tree parser treats this as unreachable (the prolog
                // consumes pre-root comments); keep it an error, not a panic.
                return Err(self.err_unexpected("comment outside root"));
            }
            Ok(Some(Raw::Comment { text }))
        } else if self.lit("<![CDATA[")? {
            self.p += "<![CDATA[".len();
            let end = self.find("]]>")?;
            let piece = self.p..self.p + end;
            self.p += end + 3;
            if self.name_starts.is_empty() {
                return Err(self.err_unexpected("CDATA outside root"));
            }
            self.commit();
            Ok(Some(Raw::TextBuf { piece, first: true }))
        } else if self.lit("<?")? {
            let (target, data) = self.pi_body()?;
            self.commit();
            if self.keep_pis && !self.name_starts.is_empty() {
                Ok(Some(Raw::Pi { target, data }))
            } else {
                Ok(None)
            }
        } else if self.lit("<!")? {
            Err(self.err_unexpected("markup declaration inside content"))
        } else {
            // Start tag.
            self.p += 1;
            let name_pos = self.abs();
            let name = self.name()?;
            validate_name(&self.s[name.clone()], name_pos).map_err(Halt::Fail)?;
            self.attributes()?;
            let self_closing = if self.lit("/>")? {
                self.p += 2;
                true
            } else {
                self.expect_lit(">")?;
                false
            };
            if self.name_starts.is_empty() {
                if *self.root_seen {
                    return Err(self.fail(XmlErrorKind::TrailingContent, name_pos));
                }
                *self.root_seen = true;
            }
            self.commit();
            if !self_closing {
                self.name_starts.push(self.names.len());
                self.names.push_str(&self.s[name.clone()]);
            } else if self.name_starts.is_empty() {
                *self.mode = Mode::Epilog;
            }
            Ok(Some(Raw::Start { name, self_closing }))
        }
    }

    /// Advances a character-data run. A segment with no references is
    /// emitted as a borrowed range of the input buffer in one byte-level
    /// skip-scan (no copy); only reference resolution goes through the
    /// text scratch, whose resolved progress is committed so a
    /// multi-chunk run never re-parses.
    fn char_data(&mut self) -> Step<Option<Raw>> {
        loop {
            match self.peek() {
                Some(b'<') => {
                    *self.mode = Mode::Content;
                    self.commit();
                    return Ok(self.flush_piece());
                }
                Some(b'&') => match self.reference() {
                    Ok(ch) => {
                        self.text.push(ch);
                        self.commit();
                    }
                    Err(Halt::More) => {
                        // Hold at the '&'; ship what we have so far.
                        self.p = *self.pos;
                        return match self.flush_piece() {
                            Some(raw) => Ok(Some(raw)),
                            None => Err(Halt::More),
                        };
                    }
                    Err(fail) => return Err(fail),
                },
                Some(_) => {
                    // Skip-scan: one forward byte scan to the next
                    // delimiter classifies the whole segment (the needles
                    // are ASCII, so scanning raw UTF-8 bytes is exact).
                    let rest = &self.s.as_bytes()[self.p..];
                    let stop = rest
                        .iter()
                        .position(|&b| b == b'<' || b == b'&')
                        .unwrap_or(rest.len());
                    if self.text.is_empty() {
                        // No reference resolved into scratch: ship the
                        // segment as a borrowed range, zero-copy. The
                        // cursor state re-enters this match on the next
                        // event to classify whatever stopped the scan.
                        let piece = self.p..self.p + stop;
                        self.p += stop;
                        self.commit();
                        let first = !*self.run_started;
                        *self.run_started = true;
                        return Ok(Some(Raw::TextBuf { piece, first }));
                    }
                    self.text.push_str(&self.s[self.p..self.p + stop]);
                    self.p += stop;
                    self.commit();
                }
                None if !self.eof => {
                    return match self.flush_piece() {
                        Some(raw) => Ok(Some(raw)),
                        None => Err(Halt::More),
                    };
                }
                None => {
                    // True end of input mid-run: emit the tail piece (the
                    // tree parser appends the text node before noticing the
                    // unclosed tag), then let Content report the error.
                    *self.mode = Mode::Content;
                    return Ok(self.flush_piece());
                }
            }
        }
    }

    /// Emits the pending text piece if it is non-empty.
    fn flush_piece(&mut self) -> Option<Raw> {
        if self.text.is_empty() {
            return None;
        }
        let first = !*self.run_started;
        *self.run_started = true;
        Some(Raw::TextScratch { first })
    }

    /// Trailing misc after the root element.
    fn epilog(&mut self) -> Step<()> {
        loop {
            self.skip_ws();
            self.commit();
            if self.peek_or()?.is_none() {
                *self.mode = Mode::Done;
                return Ok(());
            }
            if self.lit("<!--")? {
                self.comment_body()?;
                self.commit();
            } else if self.lit("<?")? {
                self.pi_body()?;
                self.commit();
            } else {
                return Err(self.fail(XmlErrorKind::TrailingContent, self.abs()));
            }
        }
    }

    /// The attribute list of a start tag, filling the attribute scratch.
    fn attributes(&mut self) -> Step<()> {
        self.attrs.clear();
        loop {
            let before = self.p;
            self.skip_ws();
            match self.peek_or()? {
                None => return Err(self.err_eof()),
                Some(b'>') => break,
                Some(b'/') if self.lit("/>")? => break,
                Some(_) => {
                    if self.p == before {
                        return Err(self.err_unexpected("attribute (missing whitespace?)"));
                    }
                    let name_pos = self.abs();
                    let name = self.name()?;
                    let name = self.s[name].to_owned();
                    if self.attrs.iter().any(|a| *a.name == name) {
                        return Err(
                            self.fail(XmlErrorKind::DuplicateAttribute(name), name_pos)
                        );
                    }
                    self.skip_ws();
                    self.expect_lit("=")?;
                    self.skip_ws();
                    let quote = match self.peek_or()? {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err_unexpected("attribute value (expected quote)")),
                    };
                    self.p += 1;
                    let mut value = String::new();
                    loop {
                        match self.peek_or()? {
                            None => return Err(self.err_eof()),
                            Some(q) if q == quote => {
                                self.p += 1;
                                break;
                            }
                            Some(b'<') => {
                                return Err(self.err_unexpected("'<' in attribute value"))
                            }
                            Some(b'&') => value.push(self.reference()?),
                            Some(_) => {
                                let rest = &self.s.as_bytes()[self.p..];
                                let stop = rest
                                    .iter()
                                    .position(|&b| b == quote || b == b'&' || b == b'<')
                                    .unwrap_or(rest.len());
                                value.push_str(&self.s[self.p..self.p + stop]);
                                self.p += stop;
                            }
                        }
                    }
                    self.attrs.push(Attribute { name: name.into(), value });
                }
            }
        }
        Ok(())
    }

    /// `<!-- … -->` (rejecting inner `--`), returning the body range.
    fn comment_body(&mut self) -> Step<Range<usize>> {
        self.expect_lit("<!--")?;
        let end = self.find("-->")?;
        let body = self.p..self.p + end;
        if self.s[body.clone()].contains("--") {
            return Err(self.err_unexpected("'--' inside comment"));
        }
        self.p += end + 3;
        Ok(body)
    }

    /// `<?target data?>`, returning target and trimmed data ranges.
    fn pi_body(&mut self) -> Step<(Range<usize>, Range<usize>)> {
        self.expect_lit("<?")?;
        let target = self.name()?;
        let end = self.find("?>")?;
        let raw = &self.s[self.p..self.p + end];
        let trimmed = raw.len() - raw.trim_start().len();
        let data = self.p + trimmed..self.p + end;
        self.p += end + 2;
        Ok((target, data))
    }

    /// `<!DOCTYPE name [subset]?>`, capturing the internal subset verbatim.
    fn doctype_decl(&mut self) -> Step<Doctype> {
        self.expect_lit("<!DOCTYPE")?;
        self.skip_ws();
        let name = self.name()?;
        let name = self.s[name].to_owned();
        let mut internal_subset = None;
        loop {
            self.skip_ws();
            match self.peek_or()? {
                Some(b'>') => {
                    self.p += 1;
                    break;
                }
                Some(b'[') => {
                    self.p += 1;
                    let start = self.p;
                    // The internal subset may contain quoted strings and
                    // comments with ']' inside; scan with minimal structure.
                    let mut depth = 0usize;
                    loop {
                        match self.peek_or()? {
                            None => return Err(self.err_eof()),
                            Some(b']') if depth == 0 => break,
                            Some(q @ (b'"' | b'\'')) => {
                                self.p += 1;
                                while let Some(c) = self.peek_or()? {
                                    self.p += 1;
                                    if c == q {
                                        break;
                                    }
                                }
                            }
                            Some(b'<') if self.lit("<!--")? => {
                                self.comment_body()?;
                            }
                            Some(b'<') => {
                                depth += 1;
                                self.p += 1;
                            }
                            Some(b'>') => {
                                depth = depth.saturating_sub(1);
                                self.p += 1;
                            }
                            Some(_) => self.p += 1,
                        }
                    }
                    internal_subset = Some(self.s[start..self.p].to_owned());
                    self.expect_lit("]")?;
                }
                Some(q @ (b'"' | b'\'')) => {
                    self.p += 1;
                    while let Some(c) = self.peek_or()? {
                        self.p += 1;
                        if c == q {
                            break;
                        }
                    }
                }
                Some(_) => {
                    // SYSTEM / PUBLIC keywords etc.
                    self.p += 1;
                }
                None => return Err(self.err_eof()),
            }
        }
        Ok(Doctype { name, internal_subset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects the full event trace of `input` fed in `chunk`-byte pieces.
    fn events(input: &str, chunk: usize) -> Result<Vec<String>> {
        let mut p = PushParser::new();
        let mut out = Vec::new();
        let bytes = input.as_bytes();
        let mut fed = 0;
        let mut finished = false;
        loop {
            while let Some(ev) = p.next_event()? {
                out.push(format!("{ev:?}"));
            }
            if p.is_complete() {
                return Ok(out);
            }
            if fed < bytes.len() {
                let end = (fed + chunk.max(1)).min(bytes.len());
                p.push(&bytes[fed..end]);
                fed = end;
            } else if !finished {
                p.finish();
                finished = true;
            } else {
                unreachable!("parser neither complete nor erroring after finish");
            }
        }
    }

    #[test]
    fn event_trace_stable_across_chunkings() {
        let doc = r#"<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r (a)>]>
<r a="x &amp; y"><a>one &lt; two<!-- note --><?pi data?><![CDATA[raw <>&]]></a> tail<b/></r> "#;
        let whole = events(doc, doc.len()).unwrap();
        // Tinier chunks split text runs into more pieces; merge continuation
        // pieces into their `first` piece before comparing traces.
        let stitch = |evs: Vec<String>| -> Vec<String> {
            let mut out: Vec<String> = Vec::new();
            for e in evs {
                if e.starts_with("Text") && e.contains("first: false") {
                    out.last_mut().expect("continuation follows a first piece").push_str(&e);
                } else {
                    out.push(e);
                }
            }
            out
        };
        let reference = stitch(whole.clone());
        for chunk in [1, 2, 3, 5, 7, 16, 64] {
            let got = stitch(events(doc, chunk).unwrap());
            assert_eq!(got.len(), reference.len(), "chunk={chunk}");
        }
        assert!(whole.iter().any(|e| e.contains("raw <>&")));
    }

    #[test]
    fn errors_match_tree_parser() {
        for bad in [
            "<r><a></b></r>",
            "<r/><x/>",
            "</r>",
            "",
            "<r>&nope;</r>",
            "<r a='1' a='2'/>",
            "<r><!-- a -- b --></r>",
            "<1r/>",
            "<r x?",
            "<r><a>",
            "<r>text",
            "text<r/>",
            "<r a=x>",
            "<r><![CDATA[never closed</r>",
        ] {
            let tree = crate::parse(bad).unwrap_err();
            for chunk in [1, 3, bad.len().max(1)] {
                let stream = events(bad, chunk).unwrap_err();
                assert_eq!(stream, tree, "input={bad:?} chunk={chunk}");
            }
        }
    }

    #[test]
    fn doctype_captured() {
        let mut p = PushParser::new();
        p.push(b"<!DOCTYPE r [<!ELEMENT r EMPTY>]><r/>");
        p.finish();
        while p.next_event().unwrap().is_some() {}
        assert!(p.is_complete());
        let dt = p.doctype().unwrap();
        assert_eq!(dt.name, "r");
        assert!(dt.internal_subset.as_deref().unwrap().contains("EMPTY"));
    }

    #[test]
    fn text_streams_in_pieces_with_first_flags() {
        let mut p = PushParser::new();
        let mut saw = Vec::new();
        p.push(b"<r>ab");
        while let Some(ev) = p.next_event().unwrap() {
            if let Event::Text { piece, first } = ev {
                saw.push((piece.to_owned(), first));
            }
        }
        p.push(b"cd</r>");
        p.finish();
        while let Some(ev) = p.next_event().unwrap() {
            if let Event::Text { piece, first } = ev {
                saw.push((piece.to_owned(), first));
            }
        }
        assert!(p.is_complete());
        assert_eq!(saw, vec![("ab".to_owned(), true), ("cd".to_owned(), false)]);
    }

    #[test]
    fn truncation_yields_clean_error_matching_tree() {
        let doc = "<r><a>text &amp; more</a><b x=\"1\"/><!-- c --></r>";
        for cut in 0..doc.len() {
            let tree = crate::parse(&doc[..cut]).unwrap_err();
            let stream = events(&doc[..cut], 1).unwrap_err();
            assert_eq!(stream, tree, "cut={cut}");
        }
    }

    #[test]
    fn split_utf8_sequences_reassemble() {
        let doc = "<r>héllo wörld — ☺</r>".to_owned();
        let whole = events(&doc, doc.len()).unwrap();
        let by_byte = events(&doc, 1).unwrap();
        let text = |evs: &[String]| {
            evs.iter().filter(|e| e.starts_with("Text")).cloned().collect::<String>()
        };
        assert!(text(&whole).contains('☺'));
        assert_eq!(text(&by_byte).matches('☺').count(), 1);
        assert_eq!(whole.first(), by_byte.first());
    }

    #[test]
    fn peak_buffered_stays_small_on_large_streams() {
        // A document much larger than any single construct: residency must
        // track the construct size, not the document size.
        let mut p = PushParser::new();
        p.push(b"<r>");
        let chunk = "x".repeat(1024);
        for _ in 0..256 {
            p.push(chunk.as_bytes());
            while p.next_event().unwrap().is_some() {}
        }
        p.push(b"</r>");
        p.finish();
        while p.next_event().unwrap().is_some() {}
        assert!(p.is_complete());
        assert!(p.peak_buffered() < 8 * 1024, "peak={}", p.peak_buffered());
    }
}
