//! Serialization of [`Document`] trees back to XML text.
//!
//! The serializer is the inverse of the parser on the *token view*: parsing
//! the output of [`Document::to_xml`] yields a document with an identical
//! structure and character data (verified by property tests). Exact byte
//! round-tripping is a non-goal (entity references are normalized).

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Document, NodeId, NodeKind};

impl Document {
    /// Serializes the whole document (without an XML declaration or
    /// doctype; see [`Document::to_xml_with_doctype`]).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_node(self.root(), &mut out);
        out
    }

    /// Serializes with the captured doctype (if any) re-emitted first.
    pub fn to_xml_with_doctype(&self) -> String {
        let mut out = String::new();
        if let Some(dt) = &self.doctype {
            out.push_str("<!DOCTYPE ");
            out.push_str(&dt.name);
            if let Some(subset) = &dt.internal_subset {
                out.push_str(" [");
                out.push_str(subset);
                out.push(']');
            }
            out.push_str(">\n");
        }
        self.write_node(self.root(), &mut out);
        out
    }

    /// Serializes the subtree rooted at `id`.
    pub fn subtree_to_xml(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(id, &mut out);
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        // Iterative serializer: explicit stack of (node, child-cursor) so
        // pathologically deep documents do not overflow the call stack.
        enum Step {
            Enter(NodeId),
            Close(NodeId),
        }
        let mut stack = vec![Step::Enter(id)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(n) => match &self.node(n).kind {
                    NodeKind::Text(t) => escape_text(t, out),
                    NodeKind::Comment(c) => {
                        out.push_str("<!--");
                        out.push_str(c);
                        out.push_str("-->");
                    }
                    NodeKind::Pi { target, data } => {
                        out.push_str("<?");
                        out.push_str(target);
                        if !data.is_empty() {
                            out.push(' ');
                            out.push_str(data);
                        }
                        out.push_str("?>");
                    }
                    NodeKind::Element { name, attrs } => {
                        out.push('<');
                        out.push_str(name);
                        for a in attrs {
                            out.push(' ');
                            out.push_str(&a.name);
                            out.push_str("=\"");
                            escape_attr(&a.value, out);
                            out.push('"');
                        }
                        let children = self.children(n);
                        // Empty text nodes serialize to nothing; treating
                        // them as absent keeps serialization a normal form
                        // (parse ∘ serialize ∘ parse = parse).
                        let effectively_empty = children
                            .iter()
                            .all(|&c| matches!(self.node(c).kind, NodeKind::Text(ref t) if t.is_empty()));
                        if effectively_empty {
                            out.push_str("/>");
                        } else {
                            out.push('>');
                            stack.push(Step::Close(n));
                            for &c in children.iter().rev() {
                                stack.push(Step::Enter(c));
                            }
                        }
                    }
                },
                Step::Close(n) => {
                    out.push_str("</");
                    out.push_str(self.name(n).expect("close of non-element"));
                    out.push('>');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_simple() {
        let src = "<r><a><b>A quick brown</b><c> fox</c> dog<e/></a></r>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse("<r><a></a></r>").unwrap();
        assert_eq!(doc.to_xml(), "<r><a/></r>");
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = Document::new("r");
        doc.append_text(doc.root(), "a < b & c > d").unwrap();
        assert_eq!(doc.to_xml(), "<r>a &lt; b &amp; c &gt; d</r>");
        // and it parses back to the same content
        let back = parse(&doc.to_xml()).unwrap();
        assert_eq!(back.content(back.root()), "a < b & c > d");
    }

    #[test]
    fn attributes_serialize_escaped() {
        let mut doc = Document::new("r");
        doc.set_attribute(doc.root(), "t", "say \"hi\" & go").unwrap();
        let xml = doc.to_xml();
        assert_eq!(xml, r#"<r t="say &quot;hi&quot; &amp; go"/>"#);
        let back = parse(&xml).unwrap();
        if let NodeKind::Element { attrs, .. } = &back.node(back.root()).kind {
            assert_eq!(attrs[0].value, "say \"hi\" & go");
        }
    }

    #[test]
    fn doctype_reemitted() {
        let src = "<!DOCTYPE r [<!ELEMENT r EMPTY>]>\n<r/>";
        let doc = parse(src).unwrap();
        let xml = doc.to_xml_with_doctype();
        assert!(xml.starts_with("<!DOCTYPE r [<!ELEMENT r EMPTY>]>"));
        assert!(xml.ends_with("<r/>"));
    }

    #[test]
    fn comments_and_pis_roundtrip() {
        let src = "<r><!-- note --><?app data?></r>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
    }

    #[test]
    fn subtree_serialization() {
        let doc = parse("<r><a><b/>text</a><c/></r>").unwrap();
        let a = doc.children(doc.root())[0];
        assert_eq!(doc.subtree_to_xml(a), "<a><b/>text</a>");
    }

    #[test]
    fn deep_document_serializes_iteratively() {
        let n = 50_000;
        let mut src = String::new();
        for _ in 0..n {
            src.push_str("<a>");
        }
        for _ in 0..n {
            src.push_str("</a>");
        }
        let doc = parse(&src).unwrap();
        let xml = doc.to_xml();
        // The innermost empty <a></a> self-closes, everything else round-trips.
        let back = parse(&xml).unwrap();
        assert_eq!(back.document_depth(), n);
        assert_eq!(back.to_xml(), xml);
    }
}
