//! Structural edit operations on [`Document`].
//!
//! These mirror the paper's update taxonomy (Sections 3.2 and 4):
//!
//! * **markup insertion** — wrapping a contiguous run of existing children in
//!   a new element so that the document stays well-formed
//!   ([`Document::wrap_children`]); this is the only operation needed to
//!   *extend* a document toward validity (Definition 2),
//! * **markup deletion** — removing a tag pair and splicing its children into
//!   the parent ([`Document::unwrap_element`]); preserves potential validity
//!   (Theorem 2),
//! * **character data insertion** — creating a new text node
//!   ([`Document::insert_text`], [`Document::append_text`]),
//! * **character data update** — changing an existing text node
//!   ([`Document::update_text`]); preserves potential validity (Theorem 2),
//! * **character data deletion** ([`Document::delete_text`]).
//!
//! All operations keep the arena invariants checked by
//! [`Document::check_integrity`] and return [`XmlError::edit`] on violated
//! preconditions rather than panicking, so editor front-ends (`pv-editor`)
//! can surface the failures.

use crate::error::XmlError;
use crate::tree::{Attribute, Document, NodeId, NodeKind};
use crate::Result;

impl Document {
    fn expect_element(&self, id: NodeId, op: &str) -> Result<()> {
        if !self.is_alive(id) {
            return Err(XmlError::edit(format!("{op}: node {id} is not alive")));
        }
        if !self.node(id).kind.is_element() {
            return Err(XmlError::edit(format!("{op}: node {id} is not an element")));
        }
        Ok(())
    }

    /// Appends a new empty element named `name` as the last child of
    /// `parent`. Returns the new node's id.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> Result<NodeId> {
        self.insert_element(parent, usize::MAX, name)
    }

    /// Inserts a new empty element at child position `index` of `parent`
    /// (`usize::MAX` or any out-of-range index appends).
    pub fn insert_element(&mut self, parent: NodeId, index: usize, name: &str) -> Result<NodeId> {
        self.expect_element(parent, "insert_element")?;
        let id = self.alloc(NodeKind::Element { name: name.into(), attrs: Vec::new() });
        self.node_mut(id).parent = Some(parent);
        let kids = &mut self.node_mut(parent).children;
        let at = index.min(kids.len());
        kids.insert(at, id);
        Ok(id)
    }

    /// Appends a text node to `parent`. Returns the new node's id.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> Result<NodeId> {
        self.insert_text(parent, usize::MAX, text)
    }

    /// Inserts a new text node at child position `index` of `parent`.
    ///
    /// This is the paper's *character data insertion* — the update whose
    /// potential-validity check is O(1) by Proposition 3.
    pub fn insert_text(&mut self, parent: NodeId, index: usize, text: &str) -> Result<NodeId> {
        self.expect_element(parent, "insert_text")?;
        let id = self.alloc(NodeKind::Text(text.to_owned()));
        self.node_mut(id).parent = Some(parent);
        let kids = &mut self.node_mut(parent).children;
        let at = index.min(kids.len());
        kids.insert(at, id);
        Ok(id)
    }

    /// Appends a comment node to `parent`.
    pub fn append_comment(&mut self, parent: NodeId, text: &str) -> Result<NodeId> {
        self.expect_element(parent, "append_comment")?;
        let id = self.alloc(NodeKind::Comment(text.to_owned()));
        self.node_mut(id).parent = Some(parent);
        self.node_mut(parent).children.push(id);
        Ok(id)
    }

    /// Appends a processing instruction to `parent`.
    pub fn append_pi(&mut self, parent: NodeId, target: &str, data: &str) -> Result<NodeId> {
        self.expect_element(parent, "append_pi")?;
        let id = self.alloc(NodeKind::Pi { target: target.into(), data: data.to_owned() });
        self.node_mut(id).parent = Some(parent);
        self.node_mut(parent).children.push(id);
        Ok(id)
    }

    /// Replaces the contents of an existing text node — the paper's
    /// *character data update* (always PV-preserving, Theorem 2).
    pub fn update_text(&mut self, id: NodeId, text: &str) -> Result<()> {
        if !self.is_alive(id) {
            return Err(XmlError::edit(format!("update_text: node {id} is not alive")));
        }
        match &mut self.node_mut(id).kind {
            NodeKind::Text(t) => {
                t.clear();
                t.push_str(text);
                Ok(())
            }
            _ => Err(XmlError::edit(format!("update_text: node {id} is not a text node"))),
        }
    }

    /// Removes a text node entirely — *character data deletion*.
    pub fn delete_text(&mut self, id: NodeId) -> Result<()> {
        if !self.is_alive(id) {
            return Err(XmlError::edit(format!("delete_text: node {id} is not alive")));
        }
        if !self.node(id).kind.is_text() {
            return Err(XmlError::edit(format!("delete_text: node {id} is not a text node")));
        }
        self.detach(id)
    }

    /// **Markup insertion** (Definition 2): wraps children
    /// `parent.children[range]` in a new element named `name`, preserving
    /// order. `range` may be empty (inserting an empty element between
    /// siblings). Returns the new wrapper element's id.
    ///
    /// This is exactly the `w1 <δ> w2 </δ> w3` extension step of the paper:
    /// `w2` is the wrapped run of children, and well-formedness is preserved
    /// by construction because a child run is always a balanced span.
    pub fn wrap_children(
        &mut self,
        parent: NodeId,
        range: std::ops::Range<usize>,
        name: &str,
    ) -> Result<NodeId> {
        self.expect_element(parent, "wrap_children")?;
        let len = self.children(parent).len();
        if range.start > range.end || range.end > len {
            return Err(XmlError::edit(format!(
                "wrap_children: range {range:?} out of bounds for {len} children"
            )));
        }
        let wrapper = self.alloc(NodeKind::Element { name: name.into(), attrs: Vec::new() });
        let moved: Vec<NodeId> = self.node(parent).children[range.clone()].to_vec();
        for &m in &moved {
            self.node_mut(m).parent = Some(wrapper);
        }
        {
            let w = self.node_mut(wrapper);
            w.parent = Some(parent);
            w.children = moved;
        }
        let kids = &mut self.node_mut(parent).children;
        kids.splice(range.clone(), [wrapper]);
        Ok(wrapper)
    }

    /// Wraps a *character range* of a text node in a new element: splits the
    /// text node at `start`/`end` (byte offsets) and wraps the middle part.
    /// This is the typical "select text, apply tag" gesture of a
    /// document-centric XML editor (the paper's xTagger reference \[10\]).
    ///
    /// Returns `(wrapper, inner_text)` ids.
    pub fn wrap_text_range(
        &mut self,
        text_node: NodeId,
        start: usize,
        end: usize,
        name: &str,
    ) -> Result<(NodeId, NodeId)> {
        if !self.is_alive(text_node) {
            return Err(XmlError::edit("wrap_text_range: node is not alive"));
        }
        let (parent, full) = match (&self.node(text_node).parent, &self.node(text_node).kind) {
            (Some(p), NodeKind::Text(t)) => (*p, t.clone()),
            (None, _) => return Err(XmlError::edit("wrap_text_range: detached text node")),
            _ => return Err(XmlError::edit("wrap_text_range: not a text node")),
        };
        if start > end || end > full.len() {
            return Err(XmlError::edit(format!(
                "wrap_text_range: bad range {start}..{end} for text of length {}",
                full.len()
            )));
        }
        if !full.is_char_boundary(start) || !full.is_char_boundary(end) {
            return Err(XmlError::edit("wrap_text_range: offsets not on char boundaries"));
        }
        let idx = self
            .child_index(text_node)
            .ok_or_else(|| XmlError::edit("wrap_text_range: node not in parent"))?;

        let (before, rest) = full.split_at(start);
        let (middle, after) = rest.split_at(end - start);
        let (before, middle, after) =
            (before.to_owned(), middle.to_owned(), after.to_owned());

        // Reuse `text_node` for the leading part (or drop it if empty).
        let mut insert_at = idx;
        if before.is_empty() {
            self.detach(text_node)?;
        } else {
            self.update_text(text_node, &before)?;
            insert_at += 1;
        }
        let wrapper = self.insert_element(parent, insert_at, name)?;
        let inner = self.append_text(wrapper, &middle)?;
        if !after.is_empty() {
            self.insert_text(parent, insert_at + 1, &after)?;
        }
        Ok((wrapper, inner))
    }

    /// **Markup deletion** (Theorem 2): removes element `id`'s start/end
    /// tags, splicing its children into its parent at its position. The
    /// element node itself is tombstoned. Fails on the root (the paper keeps
    /// the root fixed: `root(w) = r`).
    pub fn unwrap_element(&mut self, id: NodeId) -> Result<()> {
        self.expect_element(id, "unwrap_element")?;
        let parent = self
            .parent(id)
            .ok_or_else(|| XmlError::edit("unwrap_element: cannot unwrap the root"))?;
        let idx = self
            .child_index(id)
            .ok_or_else(|| XmlError::edit("unwrap_element: node not in parent"))?;
        let moved = std::mem::take(&mut self.node_mut(id).children);
        for &m in &moved {
            self.node_mut(m).parent = Some(parent);
        }
        self.node_mut(parent).children.splice(idx..=idx, moved);
        let n = self.node_mut(id);
        n.dead = true;
        n.parent = None;
        Ok(())
    }

    /// **Undo primitive** — resurrects a tombstoned *childless* node at
    /// child position `index` of `parent`, with its payload (text,
    /// attributes, name) exactly as it was when it died. This is the
    /// inverse of detaching a leaf (text deletion, or the detach half of
    /// [`Document::wrap_text_range`]); `pv-editor`'s O(edit)-cost undo
    /// journal is its only intended caller.
    ///
    /// Tombstoned arena slots are never reused, so the node's id — and
    /// every id the caller handed out before the deletion — stays valid
    /// across a delete/undo round trip, which a snapshot-based undo could
    /// not guarantee cheaply.
    pub fn restore_node(&mut self, id: NodeId, parent: NodeId, index: usize) -> Result<()> {
        self.expect_element(parent, "restore_node")?;
        if id.index() >= self.nodes.len() || !self.nodes[id.index()].dead {
            return Err(XmlError::edit(format!("restore_node: node {id} is not tombstoned")));
        }
        if !self.nodes[id.index()].children.is_empty() {
            return Err(XmlError::edit(format!("restore_node: node {id} has children")));
        }
        let kids = &mut self.node_mut(parent).children;
        if index > kids.len() {
            return Err(XmlError::edit(format!(
                "restore_node: index {index} out of bounds for {} children",
                kids.len()
            )));
        }
        kids.insert(index, id);
        let n = &mut self.nodes[id.index()];
        n.dead = false;
        n.parent = Some(parent);
        Ok(())
    }

    /// **Undo primitive** — the exact inverse of [`Document::unwrap_element`]:
    /// resurrects the tombstoned element `id` and moves children
    /// `parent.children[index .. index + count]` (the run the unwrap
    /// spliced up) back inside it, splicing `id` into their place.
    pub fn rewrap_children(
        &mut self,
        id: NodeId,
        parent: NodeId,
        index: usize,
        count: usize,
    ) -> Result<()> {
        self.expect_element(parent, "rewrap_children")?;
        if id.index() >= self.nodes.len() || !self.nodes[id.index()].dead {
            return Err(XmlError::edit(format!("rewrap_children: node {id} is not tombstoned")));
        }
        if !self.nodes[id.index()].kind.is_element() {
            return Err(XmlError::edit(format!("rewrap_children: node {id} is not an element")));
        }
        if !self.nodes[id.index()].children.is_empty() {
            return Err(XmlError::edit(format!("rewrap_children: node {id} still has children")));
        }
        let len = self.children(parent).len();
        if index.checked_add(count).is_none_or(|end| end > len) {
            return Err(XmlError::edit(format!(
                "rewrap_children: range {index}..{index}+{count} out of bounds for {len} children"
            )));
        }
        let moved: Vec<NodeId> = self.node(parent).children[index..index + count].to_vec();
        for &m in &moved {
            self.node_mut(m).parent = Some(id);
        }
        {
            let n = &mut self.nodes[id.index()];
            n.dead = false;
            n.parent = Some(parent);
            n.children = moved;
        }
        self.node_mut(parent).children.splice(index..index + count, [id]);
        Ok(())
    }

    /// Removes the whole subtree rooted at `id` (element with all its
    /// descendants, or a single non-element node).
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<()> {
        if !self.is_alive(id) {
            return Err(XmlError::edit("remove_subtree: node is not alive"));
        }
        if id == self.root {
            return Err(XmlError::edit("remove_subtree: cannot remove the root"));
        }
        let subtree: Vec<NodeId> = self.descendants(id).collect();
        self.detach(id)?;
        for n in subtree {
            let node = self.node_mut(n);
            node.dead = true;
            node.parent = None;
            node.children.clear();
        }
        Ok(())
    }

    /// Detaches `id` from its parent and tombstones it (children untouched —
    /// callers handle them). Internal helper.
    fn detach(&mut self, id: NodeId) -> Result<()> {
        let parent = self
            .parent(id)
            .ok_or_else(|| XmlError::edit("detach: node has no parent"))?;
        let idx = self
            .child_index(id)
            .ok_or_else(|| XmlError::edit("detach: node not in parent"))?;
        self.node_mut(parent).children.remove(idx);
        let n = self.node_mut(id);
        n.dead = true;
        n.parent = None;
        Ok(())
    }

    /// Swaps the positions of two children of `parent`. Unlike the
    /// PV-preserving operations above, reordering can break potential
    /// validity — callers must re-check (used by mutation workloads).
    pub fn swap_siblings(&mut self, parent: NodeId, a: NodeId, b: NodeId) -> Result<()> {
        self.expect_element(parent, "swap_siblings")?;
        let kids = &self.node(parent).children;
        let ia = kids.iter().position(|&c| c == a);
        let ib = kids.iter().position(|&c| c == b);
        match (ia, ib) {
            (Some(ia), Some(ib)) => {
                self.node_mut(parent).children.swap(ia, ib);
                Ok(())
            }
            _ => Err(XmlError::edit("swap_siblings: nodes are not children of parent")),
        }
    }

    /// Sets an attribute on an element (replacing an existing one of the
    /// same name).
    pub fn set_attribute(&mut self, id: NodeId, name: &str, value: &str) -> Result<()> {
        self.expect_element(id, "set_attribute")?;
        if let NodeKind::Element { attrs, .. } = &mut self.node_mut(id).kind {
            if let Some(a) = attrs.iter_mut().find(|a| &*a.name == name) {
                a.value = value.to_owned();
            } else {
                attrs.push(Attribute { name: name.into(), value: value.to_owned() });
            }
        }
        Ok(())
    }

    /// Renames an element. Note that renaming is **not** one of the paper's
    /// PV-preserving operations; `pv-editor` re-checks after a rename.
    pub fn rename_element(&mut self, id: NodeId, name: &str) -> Result<()> {
        self.expect_element(id, "rename_element")?;
        if let NodeKind::Element { name: n, .. } = &mut self.node_mut(id).kind {
            *n = name.into();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_children_moves_range() {
        // <r>a b c d</r> -> wrap [1..3) in <x>
        let mut d = Document::new("r");
        let kids: Vec<NodeId> =
            ["a", "b", "c", "dd"].iter().map(|n| d.append_element(d.root(), n).unwrap()).collect();
        let x = d.wrap_children(d.root(), 1..3, "x").unwrap();
        assert_eq!(d.children(d.root()), &[kids[0], x, kids[3]]);
        assert_eq!(d.children(x), &[kids[1], kids[2]]);
        assert_eq!(d.parent(kids[1]), Some(x));
        d.check_integrity().unwrap();
    }

    #[test]
    fn wrap_empty_range_inserts_empty_element() {
        let mut d = Document::new("r");
        let a = d.append_element(d.root(), "a").unwrap();
        let x = d.wrap_children(d.root(), 0..0, "x").unwrap();
        assert_eq!(d.children(d.root()), &[x, a]);
        assert!(d.children(x).is_empty());
        d.check_integrity().unwrap();
    }

    #[test]
    fn wrap_rejects_bad_range() {
        let mut d = Document::new("r");
        assert!(d.wrap_children(d.root(), 0..1, "x").is_err());
    }

    #[test]
    fn unwrap_splices_children_back() {
        let mut d = Document::new("r");
        let a = d.append_element(d.root(), "a").unwrap();
        let x = d.wrap_children(d.root(), 0..1, "x").unwrap();
        d.unwrap_element(x).unwrap();
        assert_eq!(d.children(d.root()), &[a]);
        assert_eq!(d.parent(a), Some(d.root()));
        assert!(!d.is_alive(x));
        d.check_integrity().unwrap();
    }

    #[test]
    fn wrap_then_unwrap_is_identity_on_structure() {
        let mut d = Document::new("r");
        for n in ["a", "b", "c"] {
            d.append_element(d.root(), n).unwrap();
        }
        let before: Vec<NodeId> = d.children(d.root()).to_vec();
        let x = d.wrap_children(d.root(), 0..3, "x").unwrap();
        d.unwrap_element(x).unwrap();
        assert_eq!(d.children(d.root()), &before[..]);
    }

    #[test]
    fn unwrap_root_fails() {
        let mut d = Document::new("r");
        assert!(d.unwrap_element(d.root()).is_err());
    }

    #[test]
    fn wrap_text_range_splits_text() {
        let mut d = Document::new("r");
        let t = d.append_text(d.root(), "hello world").unwrap();
        let (w, inner) = d.wrap_text_range(t, 6, 11, "em").unwrap();
        assert_eq!(d.text(inner), Some("world"));
        assert_eq!(d.name(w), Some("em"));
        assert_eq!(d.content(d.root()), "hello world");
        assert_eq!(d.children(d.root()).len(), 2); // "hello " + <em>
        d.check_integrity().unwrap();
    }

    #[test]
    fn wrap_text_range_whole_text_replaces_node() {
        let mut d = Document::new("r");
        let t = d.append_text(d.root(), "abc").unwrap();
        let (w, _) = d.wrap_text_range(t, 0, 3, "em").unwrap();
        assert_eq!(d.children(d.root()), &[w]);
        assert!(!d.is_alive(t));
        d.check_integrity().unwrap();
    }

    #[test]
    fn wrap_text_range_middle_creates_three_parts() {
        let mut d = Document::new("r");
        let t = d.append_text(d.root(), "abcdef").unwrap();
        d.wrap_text_range(t, 2, 4, "em").unwrap();
        assert_eq!(d.children(d.root()).len(), 3);
        assert_eq!(d.content(d.root()), "abcdef");
        d.check_integrity().unwrap();
    }

    #[test]
    fn update_text_changes_content() {
        let mut d = Document::new("r");
        let t = d.append_text(d.root(), "old").unwrap();
        d.update_text(t, "new").unwrap();
        assert_eq!(d.text(t), Some("new"));
    }

    #[test]
    fn update_text_on_element_fails() {
        let mut d = Document::new("r");
        let a = d.append_element(d.root(), "a").unwrap();
        assert!(d.update_text(a, "x").is_err());
    }

    #[test]
    fn delete_text_removes_node() {
        let mut d = Document::new("r");
        let t = d.append_text(d.root(), "x").unwrap();
        d.delete_text(t).unwrap();
        assert!(d.children(d.root()).is_empty());
        assert!(!d.is_alive(t));
        d.check_integrity().unwrap();
    }

    #[test]
    fn restore_node_resurrects_deleted_text() {
        let mut d = Document::new("r");
        let a = d.append_element(d.root(), "a").unwrap();
        let t = d.append_text(d.root(), "x").unwrap();
        d.delete_text(t).unwrap();
        assert!(!d.is_alive(t));
        d.restore_node(t, d.root(), 1).unwrap();
        assert!(d.is_alive(t));
        assert_eq!(d.text(t), Some("x"));
        assert_eq!(d.children(d.root()), &[a, t]);
        d.check_integrity().unwrap();
        // A live node cannot be restored again.
        assert!(d.restore_node(t, d.root(), 0).is_err());
        // Nor at an out-of-range index.
        d.delete_text(t).unwrap();
        assert!(d.restore_node(t, d.root(), 5).is_err());
    }

    #[test]
    fn rewrap_children_inverts_unwrap_exactly() {
        let mut d = Document::new("r");
        let kids: Vec<NodeId> =
            ["a", "b", "c"].iter().map(|n| d.append_element(d.root(), n).unwrap()).collect();
        let x = d.wrap_children(d.root(), 1..3, "x").unwrap();
        let before: Vec<NodeId> = d.children(d.root()).to_vec();
        d.unwrap_element(x).unwrap();
        assert_eq!(d.children(d.root()), &[kids[0], kids[1], kids[2]]);
        d.rewrap_children(x, d.root(), 1, 2).unwrap();
        assert_eq!(d.children(d.root()), &before[..]);
        assert_eq!(d.children(x), &[kids[1], kids[2]]);
        assert_eq!(d.parent(kids[1]), Some(x));
        d.check_integrity().unwrap();
        // Bad ranges and live targets are refused.
        assert!(d.rewrap_children(x, d.root(), 0, 1).is_err());
        let y = d.wrap_children(d.root(), 0..0, "y").unwrap();
        d.unwrap_element(y).unwrap();
        assert!(d.rewrap_children(y, d.root(), 1, 9).is_err());
        // Zero-count rewrap resurrects an empty wrapper (inverse of
        // unwrapping an empty element).
        d.rewrap_children(y, d.root(), 0, 0).unwrap();
        assert!(d.children(y).is_empty());
        d.check_integrity().unwrap();
    }

    #[test]
    fn remove_subtree_tombstones_descendants() {
        let mut d = Document::new("r");
        let a = d.append_element(d.root(), "a").unwrap();
        let b = d.append_element(a, "b").unwrap();
        d.remove_subtree(a).unwrap();
        assert!(!d.is_alive(a));
        assert!(!d.is_alive(b));
        assert!(d.children(d.root()).is_empty());
        d.check_integrity().unwrap();
    }

    #[test]
    fn set_attribute_replaces() {
        let mut d = Document::new("r");
        d.set_attribute(d.root(), "id", "1").unwrap();
        d.set_attribute(d.root(), "id", "2").unwrap();
        if let NodeKind::Element { attrs, .. } = &d.node(d.root()).kind {
            assert_eq!(attrs.len(), 1);
            assert_eq!(attrs[0].value, "2");
        } else {
            panic!("root not element");
        }
    }

    #[test]
    fn rename_changes_name() {
        let mut d = Document::new("r");
        let a = d.append_element(d.root(), "a").unwrap();
        d.rename_element(a, "z").unwrap();
        assert_eq!(d.name(a), Some("z"));
    }
}
