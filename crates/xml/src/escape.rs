//! Character-reference escaping and resolution shared by the parser and
//! serializer.

use crate::error::{XmlError, XmlErrorKind};
use crate::Result;

/// Escapes `<`, `>`, `&` in character data for serialization.
pub fn escape_text(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            c => out.push(c),
        }
    }
}

/// Escapes text for a double-quoted attribute value.
pub fn escape_attr(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

/// Resolves a reference body (the part between `&` and `;`): the five
/// predefined entities plus decimal/hex character references.
///
/// `offset` is the byte position of the `&`, used for error reporting.
pub fn resolve_reference(body: &str, offset: usize) -> Result<char> {
    match body {
        "amp" => return Ok('&'),
        "lt" => return Ok('<'),
        "gt" => return Ok('>'),
        "quot" => return Ok('"'),
        "apos" => return Ok('\''),
        _ => {}
    }
    let invalid = || XmlError::new(XmlErrorKind::InvalidReference(body.to_owned()), offset);
    if let Some(rest) = body.strip_prefix('#') {
        let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).map_err(|_| invalid())?
        } else {
            rest.parse::<u32>().map_err(|_| invalid())?
        };
        char::from_u32(code).ok_or_else(invalid)
    } else {
        Err(invalid())
    }
}

/// `true` if `c` may start an XML name (simplified NameStartChar: letters,
/// `_`, `:` and non-ASCII).
#[inline]
pub fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || !c.is_ascii()
}

/// `true` if `c` may continue an XML name.
#[inline]
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Checks that `name` is a syntactically plausible XML name.
pub fn validate_name(name: &str, offset: usize) -> Result<()> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => {}
        _ => return Err(XmlError::new(XmlErrorKind::InvalidName(name.to_owned()), offset)),
    }
    if chars.all(is_name_char) {
        Ok(())
    } else {
        Err(XmlError::new(XmlErrorKind::InvalidName(name.to_owned()), offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_handles_specials() {
        let mut out = String::new();
        escape_text("a<b>&c", &mut out);
        assert_eq!(out, "a&lt;b&gt;&amp;c");
    }

    #[test]
    fn escape_attr_handles_quotes() {
        let mut out = String::new();
        escape_attr(r#"say "hi" & <go>"#, &mut out);
        assert_eq!(out, "say &quot;hi&quot; &amp; &lt;go>");
    }

    #[test]
    fn predefined_entities_resolve() {
        for (b, c) in [("amp", '&'), ("lt", '<'), ("gt", '>'), ("quot", '"'), ("apos", '\'')] {
            assert_eq!(resolve_reference(b, 0).unwrap(), c);
        }
    }

    #[test]
    fn numeric_references_resolve() {
        assert_eq!(resolve_reference("#65", 0).unwrap(), 'A');
        assert_eq!(resolve_reference("#x41", 0).unwrap(), 'A');
        assert_eq!(resolve_reference("#x263A", 0).unwrap(), '☺');
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(resolve_reference("nbsp", 3).is_err());
        assert!(resolve_reference("#xZZ", 0).is_err());
        assert!(resolve_reference("#1114112", 0).is_err()); // > char::MAX
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("a", 0).is_ok());
        assert!(validate_name("a-b.c:d_9", 0).is_ok());
        assert!(validate_name("_x", 0).is_ok());
        assert!(validate_name("9a", 0).is_err());
        assert!(validate_name("", 0).is_err());
        assert!(validate_name("a b", 0).is_err());
    }
}
