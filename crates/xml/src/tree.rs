//! Arena-based document tree (the paper's DOM model, Figure 2).
//!
//! Nodes live in a single `Vec` owned by [`Document`] and are addressed by
//! [`NodeId`]. This gives cheap copies of ids, cache-friendly traversal, and
//! O(1) structural surgery for the edit operations in [`crate::edit`].
//! Deleted nodes are tombstoned (never reused) so `NodeId`s remain stable for
//! the lifetime of a document — which the incremental potential-validity
//! checker in `pv-core` relies on.

use crate::error::XmlError;
use crate::Result;
use std::fmt;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from [`NodeId::index`] — for serialization layers
    /// (the validation service ships violation nodes over the wire). An id
    /// is only meaningful against the arena it came from; nothing checks
    /// that here.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A single `name="value"` attribute.
///
/// Attributes never influence potential validity (paper, footnote 3); they
/// are preserved for round-tripping only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: Box<str>,
    /// Attribute value with references already resolved.
    pub value: String,
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node with a tag name and attributes.
    Element { name: Box<str>, attrs: Vec<Attribute> },
    /// A character-data node (text or CDATA content).
    Text(String),
    /// A comment (`<!-- … -->`); content excludes the delimiters.
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    Pi { target: Box<str>, data: String },
}

impl NodeKind {
    /// `true` if this is an element node.
    #[inline]
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// `true` if this is a text node.
    #[inline]
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text(_))
    }
}

/// A node in the arena.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent element, or `None` for the root (or a detached/tombstoned node).
    pub parent: Option<NodeId>,
    /// The node payload.
    pub kind: NodeKind,
    /// Children in document order (always empty for non-element nodes).
    pub children: Vec<NodeId>,
    /// Tombstone flag: `true` once removed by an edit.
    pub(crate) dead: bool,
}

/// Captured `<!DOCTYPE …>` declaration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doctype {
    /// The declared document-type name (should match the root element).
    pub name: String,
    /// The internal subset between `[` and `]`, verbatim (for `pv-dtd`).
    pub internal_subset: Option<String>,
}

/// The logical token produced for one child slot of an element: either a
/// child element's tag name or a maximal run of character data.
///
/// This is the raw material of the paper's `Δ_T` operator (Section 4): the
/// sequence of children of a node with all character data collapsed to a
/// single `σ` per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildToken<'doc> {
    /// A child element with the given name, at this [`NodeId`].
    Element(&'doc str, NodeId),
    /// One or more consecutive character-data children (non-empty overall).
    Sigma,
}

/// An XML document: an arena of [`Node`]s plus a distinguished root element.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    /// Doctype declaration if one was present in the source.
    pub doctype: Option<Doctype>,
}

impl Document {
    /// Creates a document consisting of a single empty root element.
    pub fn new(root_name: &str) -> Self {
        let root = Node {
            parent: None,
            kind: NodeKind::Element { name: root_name.into(), attrs: Vec::new() },
            children: Vec::new(),
            dead: false,
        };
        Document { nodes: vec![root], root: NodeId(0), doctype: None }
    }

    /// The root element of the document.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node. Panics on a stale (tombstoned) id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.index()];
        debug_assert!(!n.dead, "accessed dead node {id}");
        n
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// `true` if the node id refers to a live node.
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len() && !self.nodes[id.index()].dead
    }

    /// The element name of `id`, or `None` for non-element nodes.
    #[inline]
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The text content of `id` if it is a text node.
    #[inline]
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Children of `id` in document order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent of `id` (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Position of `child` within its parent's child list.
    pub fn child_index(&self, child: NodeId) -> Option<usize> {
        let p = self.parent(child)?;
        self.children(p).iter().position(|&c| c == child)
    }

    /// Allocates a new detached node and returns its id.
    pub(crate) fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(Node { parent: None, kind, children: Vec::new(), dead: false });
        id
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// Number of live **element** nodes.
    pub fn element_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead && n.kind.is_element()).count()
    }

    /// Iterator over all live element nodes in document (pre)order,
    /// starting at the root.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(self.root).filter(move |&id| self.node(id).kind.is_element())
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants { doc: self, stack: vec![id] }
    }

    /// Depth of the subtree rooted at `id`: a leaf element has depth 1.
    ///
    /// The paper's depth-bound parameter `D` (Section 4.3.1) is compared
    /// against this measure.
    pub fn depth(&self, id: NodeId) -> usize {
        // Iterative DFS to avoid recursion on pathological documents.
        let mut max = 0usize;
        let mut stack = vec![(id, 1usize)];
        while let Some((n, d)) = stack.pop() {
            if self.node(n).kind.is_element() {
                max = max.max(d);
                for &c in self.children(n) {
                    stack.push((c, d + 1));
                }
            }
        }
        max
    }

    /// Depth of the whole document (root has depth 1).
    pub fn document_depth(&self) -> usize {
        self.depth(self.root)
    }

    /// Concatenation of all character data in the subtree of `id`, in
    /// document order — the paper's `content(w)`.
    pub fn content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.push_content(id, &mut out);
        out
    }

    fn push_content(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Element { .. } => {
                for &c in self.children(id) {
                    self.push_content(c, out);
                }
            }
            _ => {}
        }
    }

    /// The child-token view of element `id`: the sequence of the paper's
    /// `Δ_T` symbols *before* DTD resolution — child element names and `σ`
    /// markers, with each maximal run of non-empty character data collapsed
    /// into a single [`ChildToken::Sigma`].
    ///
    /// Comments and processing instructions are transparent (they carry no
    /// structure relevant to validity). Whitespace-only text **does** count
    /// as character data, matching `δ_T`'s definition ("any string of
    /// non-markup characters of length at least one").
    pub fn child_tokens(&self, id: NodeId) -> Vec<ChildToken<'_>> {
        let mut out = Vec::with_capacity(self.children(id).len());
        let mut in_text_run = false;
        for &c in self.children(id) {
            match &self.node(c).kind {
                NodeKind::Element { name, .. } => {
                    out.push(ChildToken::Element(name, c));
                    in_text_run = false;
                }
                NodeKind::Text(t) => {
                    if !t.is_empty() && !in_text_run {
                        out.push(ChildToken::Sigma);
                        in_text_run = true;
                    }
                }
                NodeKind::Comment(_) | NodeKind::Pi { .. } => {
                    // transparent: does not break a σ run in spirit, but the
                    // paper has no notion of comments; we conservatively end
                    // the run (two text nodes separated by a comment are two
                    // sigma tokens only if an element intervenes — keep runs
                    // simple and end them here).
                    in_text_run = false;
                }
            }
        }
        out
    }

    /// Validates internal structural invariants; used by tests and after
    /// batches of edits. Returns an error describing the first violation.
    pub fn check_integrity(&self) -> Result<()> {
        if !self.is_alive(self.root) {
            return Err(XmlError::edit("root is dead"));
        }
        if self.nodes[self.root.index()].parent.is_some() {
            return Err(XmlError::edit("root has a parent"));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.dead {
                continue;
            }
            for &c in &n.children {
                let child = &self.nodes[c.index()];
                if child.dead {
                    return Err(XmlError::edit(format!("node #{i} has dead child {c}")));
                }
                if child.parent != Some(NodeId(i as u32)) {
                    return Err(XmlError::edit(format!(
                        "child {c} of #{i} has wrong parent {:?}",
                        child.parent
                    )));
                }
            }
            if !n.kind.is_element() && !n.children.is_empty() {
                return Err(XmlError::edit(format!("non-element #{i} has children")));
            }
        }
        // Every live non-root node must be reachable from the root.
        let reachable: std::collections::HashSet<NodeId> = self.descendants(self.root).collect();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.dead && !reachable.contains(&NodeId(i as u32)) {
                return Err(XmlError::edit(format!("node #{i} is live but unreachable")));
            }
        }
        Ok(())
    }
}

/// Iterator returned by [`Document::descendants`].
pub struct Descendants<'doc> {
    doc: &'doc Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let node = self.doc.node(id);
        // Push children in reverse so they pop in document order.
        self.stack.extend(node.children.iter().rev());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        // <r><a>hi<b/></a>world</r>
        let mut d = Document::new("r");
        let a = d.append_element(d.root(), "a").unwrap();
        let t1 = d.append_text(a, "hi").unwrap();
        let b = d.append_element(a, "b").unwrap();
        d.append_text(d.root(), "world").unwrap();
        let _ = t1;
        (d, a, b, t1)
    }

    #[test]
    fn new_document_has_root() {
        let d = Document::new("r");
        assert_eq!(d.name(d.root()), Some("r"));
        assert_eq!(d.children(d.root()), &[]);
        assert_eq!(d.document_depth(), 1);
        d.check_integrity().unwrap();
    }

    #[test]
    fn traversal_is_preorder() {
        let (d, a, b, t1) = sample();
        let order: Vec<NodeId> = d.descendants(d.root()).collect();
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], d.root());
        assert_eq!(order[1], a);
        assert_eq!(order[2], t1);
        assert_eq!(order[3], b);
    }

    #[test]
    fn depth_counts_elements() {
        let (d, _, _, _) = sample();
        assert_eq!(d.document_depth(), 3); // r > a > b
    }

    #[test]
    fn content_concatenates_in_document_order() {
        let (d, _, _, _) = sample();
        assert_eq!(d.content(d.root()), "hiworld");
    }

    #[test]
    fn child_tokens_collapse_text_runs() {
        let mut d = Document::new("r");
        d.append_text(d.root(), "one").unwrap();
        d.append_text(d.root(), "two").unwrap();
        let a = d.append_element(d.root(), "a").unwrap();
        d.append_text(d.root(), "three").unwrap();
        let toks = d.child_tokens(d.root());
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], ChildToken::Sigma);
        assert_eq!(toks[1], ChildToken::Element("a", a));
        assert_eq!(toks[2], ChildToken::Sigma);
    }

    #[test]
    fn empty_text_is_not_sigma() {
        let mut d = Document::new("r");
        d.append_text(d.root(), "").unwrap();
        assert!(d.child_tokens(d.root()).is_empty());
    }

    #[test]
    fn element_count_skips_text() {
        let (d, _, _, _) = sample();
        assert_eq!(d.element_count(), 3);
        assert_eq!(d.live_count(), 5);
    }

    #[test]
    fn child_index_finds_position() {
        let (d, a, b, t1) = sample();
        assert_eq!(d.child_index(a), Some(0));
        assert_eq!(d.child_index(t1), Some(0));
        assert_eq!(d.child_index(b), Some(1));
        assert_eq!(d.child_index(d.root()), None);
    }
}
