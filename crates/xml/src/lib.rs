//! # pv-xml — XML substrate for potential-validity checking
//!
//! A from-scratch, dependency-free XML layer providing exactly what the
//! ICDE 2006 paper *On Potential Validity of Document-Centric XML Documents*
//! needs from its document model:
//!
//! * a **well-formedness parser** ([`parse`]) producing an arena-based
//!   [`Document`] tree (the DOM trees of the paper's Figure 2),
//! * a **serializer** ([`Document::to_xml`]) that round-trips the token
//!   structure,
//! * **edit operations** mirroring the paper's update taxonomy (Section 3.2):
//!   markup insertion/deletion of well-formed tag pairs, character-data
//!   insertion/update/deletion ([`Document::wrap_children`],
//!   [`Document::unwrap_element`], [`Document::insert_text`], …),
//! * document-order traversal, depth computation and child token views that
//!   the `δ_T` / `Δ_T` operators of `pv-core` are built on.
//!
//! The parser handles the document-centric XML subset relevant to potential
//! validity: elements, attributes, character data, CDATA sections, comments,
//! processing instructions, numeric/named character references, and a
//! `<!DOCTYPE … [internal subset]>` whose internal subset is captured verbatim
//! (so `pv-dtd` can parse it). Attribute values and non-structural elements of
//! the XML spec (external DTD subsets, full entity machinery) are out of
//! scope, as in the paper (footnote 3: attributes never affect potential
//! validity).

pub mod edit;
pub mod error;
pub mod escape;
pub mod parser;
pub mod serialize;
pub mod stream;
pub mod tree;

pub use error::{XmlError, XmlErrorKind};
pub use parser::{parse, parse_fragment, ParseOptions};
pub use stream::{Event, PushParser};
pub use tree::{Attribute, ChildToken, Document, Doctype, Node, NodeId, NodeKind};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, XmlError>;
