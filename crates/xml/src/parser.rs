//! Well-formedness XML parser producing a [`Document`] arena.
//!
//! The parser is a hand-written cursor over the input bytes with an explicit
//! open-element stack (no recursion, so arbitrarily deep documents — which
//! the depth-bound experiments of `pv-bench` generate — parse fine).
//!
//! Checked well-formedness rules: single root, properly nested matching
//! tags, attribute syntax with no duplicates, legal names, resolvable
//! character/entity references, `--` not inside comments, `]]>` termination
//! of CDATA. The `<!DOCTYPE>` internal subset is captured verbatim into
//! [`Doctype`] for `pv-dtd`.

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::{is_name_char, is_name_start, resolve_reference, validate_name};
use crate::tree::{Attribute, Doctype, Document, NodeId, NodeKind};
use crate::Result;

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Keep comment nodes in the tree (default `true`).
    pub keep_comments: bool,
    /// Keep processing-instruction nodes (default `true`).
    pub keep_pis: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { keep_comments: true, keep_pis: true }
    }
}

/// Parses a complete XML document (one root element; prolog and trailing
/// misc allowed).
pub fn parse(input: &str) -> Result<Document> {
    Parser::new(input, ParseOptions::default()).parse_document()
}

/// Parses a document with explicit [`ParseOptions`].
pub fn parse_with(input: &str, options: ParseOptions) -> Result<Document> {
    Parser::new(input, options).parse_document()
}

/// Parses an XML *fragment*: like [`parse`] but without requiring a prolog;
/// provided for symmetry and clarity at call sites handling editor buffers.
pub fn parse_fragment(input: &str) -> Result<Document> {
    parse(input)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, options: ParseOptions) -> Self {
        Parser { src, bytes: src.as_bytes(), pos: 0, options }
    }

    // ---- low-level cursor ----------------------------------------------

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    #[inline]
    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err_unexpected(&format!("input (expected {s:?})")))
        }
    }

    fn err_unexpected(&self, what: &str) -> XmlError {
        XmlError::new(XmlErrorKind::Unexpected(what.to_owned()), self.pos)
    }

    fn err_eof(&self) -> XmlError {
        XmlError::new(XmlErrorKind::UnexpectedEof, self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Consumes an XML name and returns it.
    fn name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        let mut chars = self.src[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            _ => {
                return Err(XmlError::new(
                    XmlErrorKind::InvalidName(self.src[self.pos..].chars().take(8).collect()),
                    self.pos,
                ))
            }
        }
        let mut end = self.src.len();
        for (i, c) in chars {
            if !is_name_char(c) {
                end = self.pos + i;
                break;
            }
        }
        if end == self.src.len() && self.pos < self.src.len() {
            // name runs to end of input
            self.pos = end;
            return Ok(&self.src[start..end]);
        }
        self.pos = end;
        Ok(&self.src[start..end])
    }

    // ---- document structure --------------------------------------------

    fn parse_document(mut self) -> Result<Document> {
        // Optional XML declaration.
        if self.starts_with("<?xml") {
            let close = self.src[self.pos..]
                .find("?>")
                .ok_or_else(|| self.err_eof())?;
            self.bump(close + 2);
        }
        let mut doctype = None;
        // Prolog misc + doctype.
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.comment_body()?;
            } else if self.starts_with("<!DOCTYPE") {
                if doctype.is_some() {
                    return Err(self.err_unexpected("second <!DOCTYPE"));
                }
                doctype = Some(self.doctype()?);
            } else if self.starts_with("<?") {
                self.pi_body()?;
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err(if self.peek().is_none() {
                XmlError::new(XmlErrorKind::NoRootElement, self.pos)
            } else {
                self.err_unexpected("character data before the root element")
            });
        }

        // Root element and content, with an explicit element stack.
        let mut doc = Document::new("\u{0}placeholder");
        doc.doctype = doctype;
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root_seen = false;

        loop {
            if stack.is_empty() && root_seen {
                // Trailing misc only.
                self.skip_ws();
                if self.pos >= self.src.len() {
                    break;
                }
                if self.starts_with("<!--") {
                    let c = self.comment_body()?;
                    let _ = c;
                    continue;
                }
                if self.starts_with("<?") {
                    self.pi_body()?;
                    continue;
                }
                return Err(XmlError::new(XmlErrorKind::TrailingContent, self.pos));
            }

            match self.peek() {
                None => {
                    return Err(if let Some(&open) = stack.last() {
                        let name = doc.name(open).unwrap_or("?").to_owned();
                        XmlError::new(XmlErrorKind::UnclosedTag(name), self.pos)
                    } else {
                        XmlError::new(XmlErrorKind::NoRootElement, self.pos)
                    });
                }
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.bump(2);
                        let close_pos = self.pos;
                        let name = self.name()?.to_owned();
                        self.skip_ws();
                        self.expect(">")?;
                        let Some(open) = stack.pop() else {
                            return Err(XmlError::new(
                                XmlErrorKind::UnopenedTag(name),
                                close_pos,
                            ));
                        };
                        let open_name = doc.name(open).unwrap_or("?");
                        if open_name != name {
                            return Err(XmlError::new(
                                XmlErrorKind::MismatchedTag {
                                    open: open_name.to_owned(),
                                    close: name,
                                },
                                close_pos,
                            ));
                        }
                    } else if self.starts_with("<!--") {
                        let text = self.comment_body()?;
                        if self.options.keep_comments {
                            let parent = *stack.last().expect("comment outside root handled above");
                            doc.append_comment(parent, &text)?;
                        }
                    } else if self.starts_with("<![CDATA[") {
                        self.bump("<![CDATA[".len());
                        let end = self.src[self.pos..]
                            .find("]]>")
                            .ok_or_else(|| self.err_eof())?;
                        let text = self.src[self.pos..self.pos + end].to_owned();
                        self.bump(end + 3);
                        let parent = *stack.last().ok_or_else(|| self.err_unexpected("CDATA outside root"))?;
                        doc.append_text(parent, &text)?;
                    } else if self.starts_with("<?") {
                        let (target, data) = self.pi_body()?;
                        if self.options.keep_pis {
                            if let Some(&parent) = stack.last() {
                                doc.append_pi(parent, &target, &data)?;
                            }
                        }
                    } else if self.starts_with("<!") {
                        return Err(self.err_unexpected("markup declaration inside content"));
                    } else {
                        // Start tag.
                        self.bump(1);
                        let name_pos = self.pos;
                        let name = self.name()?.to_owned();
                        validate_name(&name, name_pos)?;
                        let attrs = self.attributes()?;
                        let self_closing = if self.starts_with("/>") {
                            self.bump(2);
                            true
                        } else {
                            self.expect(">")?;
                            false
                        };
                        let id = if let Some(&parent) = stack.last() {
                            
                            doc.append_element(parent, &name)?
                        } else {
                            if root_seen {
                                return Err(XmlError::new(
                                    XmlErrorKind::TrailingContent,
                                    name_pos,
                                ));
                            }
                            root_seen = true;
                            // Fix up the placeholder root.
                            doc.rename_element(doc.root(), &name)?;
                            doc.root()
                        };
                        if let NodeKind::Element { attrs: a, .. } = &mut doc.node_mut(id).kind {
                            *a = attrs;
                        }
                        if !self_closing {
                            stack.push(id);
                        }
                    }
                }
                Some(_) => {
                    // Character data (must be inside the root).
                    let parent = *stack
                        .last()
                        .ok_or_else(|| self.err_unexpected("character data outside the root"))?;
                    let text = self.char_data()?;
                    doc.append_text(parent, &text)?;
                }
            }
        }
        debug_assert!(doc.check_integrity().is_ok());
        Ok(doc)
    }

    /// Parses character data up to the next `<`, resolving references.
    fn char_data(&mut self) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => {
                    let amp = self.pos;
                    self.bump(1);
                    let semi = self.src[self.pos..]
                        .find(';')
                        .ok_or_else(|| self.err_eof())?;
                    let body = &self.src[self.pos..self.pos + semi];
                    out.push(resolve_reference(body, amp)?);
                    self.bump(semi + 1);
                }
                Some(_) => {
                    // Copy a run of plain characters.
                    let rest = &self.src[self.pos..];
                    let stop = rest.find(['<', '&']).unwrap_or(rest.len());
                    out.push_str(&rest[..stop]);
                    self.bump(stop);
                }
            }
        }
        Ok(out)
    }

    /// Parses the attribute list of a start tag, up to (not including)
    /// `>` or `/>`.
    fn attributes(&mut self) -> Result<Vec<Attribute>> {
        let mut attrs: Vec<Attribute> = Vec::new();
        loop {
            let before = self.pos;
            self.skip_ws();
            match self.peek() {
                Some(b'>') => break,
                Some(b'/') if self.starts_with("/>") => break,
                None => return Err(self.err_eof()),
                _ => {
                    if self.pos == before {
                        return Err(self.err_unexpected("attribute (missing whitespace?)"));
                    }
                    let name_pos = self.pos;
                    let name = self.name()?.to_owned();
                    if attrs.iter().any(|a| *a.name == *name) {
                        return Err(XmlError::new(
                            XmlErrorKind::DuplicateAttribute(name),
                            name_pos,
                        ));
                    }
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err_unexpected("attribute value (expected quote)")),
                    };
                    self.bump(1);
                    let mut value = String::new();
                    loop {
                        match self.peek() {
                            None => return Err(self.err_eof()),
                            Some(q) if q == quote => {
                                self.bump(1);
                                break;
                            }
                            Some(b'<') => {
                                return Err(self.err_unexpected("'<' in attribute value"))
                            }
                            Some(b'&') => {
                                let amp = self.pos;
                                self.bump(1);
                                let semi = self.src[self.pos..]
                                    .find(';')
                                    .ok_or_else(|| self.err_eof())?;
                                let body = &self.src[self.pos..self.pos + semi];
                                value.push(resolve_reference(body, amp)?);
                                self.bump(semi + 1);
                            }
                            Some(_) => {
                                let rest = &self.src[self.pos..];
                                let stop = rest
                                    .find([quote as char, '&', '<'])
                                    .unwrap_or(rest.len());
                                value.push_str(&rest[..stop]);
                                self.bump(stop);
                            }
                        }
                    }
                    attrs.push(Attribute { name: name.into(), value });
                }
            }
        }
        Ok(attrs)
    }

    /// Parses `<!-- … -->`, returning the comment body. Rejects `--` inside.
    fn comment_body(&mut self) -> Result<String> {
        self.expect("<!--")?;
        let end = self.src[self.pos..].find("-->").ok_or_else(|| self.err_eof())?;
        let body = &self.src[self.pos..self.pos + end];
        if body.contains("--") {
            return Err(self.err_unexpected("'--' inside comment"));
        }
        self.bump(end + 3);
        Ok(body.to_owned())
    }

    /// Parses `<?target data?>`.
    fn pi_body(&mut self) -> Result<(String, String)> {
        self.expect("<?")?;
        let target = self.name()?.to_owned();
        let end = self.src[self.pos..].find("?>").ok_or_else(|| self.err_eof())?;
        let data = self.src[self.pos..self.pos + end].trim_start().to_owned();
        self.bump(end + 2);
        Ok((target, data))
    }

    /// Parses `<!DOCTYPE name [subset]?>`, capturing the internal subset.
    fn doctype(&mut self) -> Result<Doctype> {
        self.expect("<!DOCTYPE")?;
        self.skip_ws();
        let name = self.name()?.to_owned();
        // Skip optional external id tokens (SYSTEM/PUBLIC literals).
        let mut internal_subset = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(b'[') => {
                    self.bump(1);
                    let start = self.pos;
                    // The internal subset may contain quoted strings and
                    // comments with ']' inside; scan with minimal structure.
                    let mut depth = 0usize;
                    loop {
                        match self.peek() {
                            None => return Err(self.err_eof()),
                            Some(b']') if depth == 0 => break,
                            Some(b'"') | Some(b'\'') => {
                                let q = self.peek().unwrap();
                                self.bump(1);
                                while let Some(c) = self.peek() {
                                    self.bump(1);
                                    if c == q {
                                        break;
                                    }
                                }
                            }
                            Some(b'<') if self.starts_with("<!--") => {
                                self.comment_body()?;
                            }
                            Some(b'<') => {
                                depth += 1;
                                self.bump(1);
                            }
                            Some(b'>') => {
                                depth = depth.saturating_sub(1);
                                self.bump(1);
                            }
                            Some(_) => self.bump(1),
                        }
                    }
                    internal_subset = Some(self.src[start..self.pos].to_owned());
                    self.expect("]")?;
                }
                Some(b'"') | Some(b'\'') => {
                    let q = self.peek().unwrap();
                    self.bump(1);
                    while let Some(c) = self.peek() {
                        self.bump(1);
                        if c == q {
                            break;
                        }
                    }
                }
                Some(_) => {
                    // SYSTEM / PUBLIC keywords etc.
                    self.bump(1);
                }
                None => return Err(self.err_eof()),
            }
        }
        Ok(Doctype { name, internal_subset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ChildToken;

    #[test]
    fn parses_paper_example_string_w() {
        // Example 1, string w (the one rejected for potential validity).
        let w = "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>";
        let doc = parse(w).unwrap();
        assert_eq!(doc.name(doc.root()), Some("r"));
        let a = doc.children(doc.root())[0];
        assert_eq!(doc.name(a), Some("a"));
        let toks = doc.child_tokens(a);
        let names: Vec<String> = toks
            .iter()
            .map(|t| match t {
                ChildToken::Element(n, _) => n.to_string(),
                ChildToken::Sigma => "σ".to_string(),
            })
            .collect();
        assert_eq!(names, ["b", "e", "c", "σ"]);
        assert_eq!(doc.content(doc.root()), "A quick brown fox jumps over a lazy dog");
    }

    #[test]
    fn parses_paper_example_string_s() {
        let s = "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>";
        let doc = parse(s).unwrap();
        let a = doc.children(doc.root())[0];
        let toks = doc.child_tokens(a);
        let kinds: Vec<&str> = toks
            .iter()
            .map(|t| match t {
                ChildToken::Element(n, _) => *n,
                ChildToken::Sigma => "σ",
            })
            .collect();
        assert_eq!(kinds, ["b", "c", "σ", "e"]);
    }

    #[test]
    fn self_closing_tags() {
        let doc = parse("<r><a/><b x='1'/></r>").unwrap();
        assert_eq!(doc.children(doc.root()).len(), 2);
    }

    #[test]
    fn attributes_parse_and_resolve_references() {
        let doc = parse(r#"<r a="1" b='two &amp; three'/>"#).unwrap();
        if let NodeKind::Element { attrs, .. } = &doc.node(doc.root()).kind {
            assert_eq!(attrs.len(), 2);
            assert_eq!(&*attrs[1].name, "b");
            assert_eq!(attrs[1].value, "two & three");
        } else {
            panic!()
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(matches!(
            parse(r#"<r a="1" a="2"/>"#).unwrap_err().kind,
            XmlErrorKind::DuplicateAttribute(_)
        ));
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(
            parse("<r><a></b></r>").unwrap_err().kind,
            XmlErrorKind::MismatchedTag { .. }
        ));
    }

    #[test]
    fn unclosed_tag_rejected() {
        assert!(matches!(parse("<r><a>").unwrap_err().kind, XmlErrorKind::UnclosedTag(_)));
    }

    #[test]
    fn unopened_close_rejected() {
        assert!(matches!(parse("</r>").unwrap_err().kind, XmlErrorKind::UnopenedTag(_)));
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(matches!(parse("<r/><x/>").unwrap_err().kind, XmlErrorKind::TrailingContent));
        assert!(parse("<r/>  \n").is_ok());
        assert!(parse("<r/><!-- ok --><?pi ok?>").is_ok());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(parse("").unwrap_err().kind, XmlErrorKind::NoRootElement));
        assert!(matches!(parse("   ").unwrap_err().kind, XmlErrorKind::NoRootElement));
    }

    #[test]
    fn character_references_in_text() {
        let doc = parse("<r>&lt;&#65;&gt; &amp; &#x42;</r>").unwrap();
        assert_eq!(doc.content(doc.root()), "<A> & B");
    }

    #[test]
    fn bad_entity_rejected() {
        assert!(matches!(
            parse("<r>&nope;</r>").unwrap_err().kind,
            XmlErrorKind::InvalidReference(_)
        ));
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = parse("<r><![CDATA[<not-a-tag> & stuff]]></r>").unwrap();
        assert_eq!(doc.content(doc.root()), "<not-a-tag> & stuff");
    }

    #[test]
    fn comments_and_pis_kept() {
        let doc = parse("<r><!-- note --><?app do?></r>").unwrap();
        assert_eq!(doc.children(doc.root()).len(), 2);
        // but they contribute no child tokens
        assert!(doc.child_tokens(doc.root()).is_empty());
    }

    #[test]
    fn comments_can_be_dropped() {
        let doc =
            parse_with("<r><!-- note --></r>", ParseOptions { keep_comments: false, keep_pis: true })
                .unwrap();
        assert!(doc.children(doc.root()).is_empty());
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        assert!(parse("<r><!-- a -- b --></r>").is_err());
    }

    #[test]
    fn xml_decl_and_doctype() {
        let src = r#"<?xml version="1.0"?>
<!DOCTYPE r [
  <!ELEMENT r (a+)>
  <!ELEMENT a (#PCDATA)>
]>
<r><a>x</a></r>"#;
        let doc = parse(src).unwrap();
        let dt = doc.doctype.as_ref().unwrap();
        assert_eq!(dt.name, "r");
        assert!(dt.internal_subset.as_ref().unwrap().contains("<!ELEMENT r (a+)>"));
    }

    #[test]
    fn doctype_with_system_id() {
        let src = r#"<!DOCTYPE html SYSTEM "http://example.org/x.dtd"><html/>"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.doctype.as_ref().unwrap().name, "html");
        assert!(doc.doctype.as_ref().unwrap().internal_subset.is_none());
    }

    #[test]
    fn deep_nesting_does_not_overflow() {
        let n = 50_000;
        let mut src = String::new();
        for _ in 0..n {
            src.push_str("<a>");
        }
        for _ in 0..n {
            src.push_str("</a>");
        }
        let doc = parse(&src).unwrap();
        assert_eq!(doc.document_depth(), n);
    }

    #[test]
    fn whitespace_only_text_is_kept() {
        let doc = parse("<r> <a/> </r>").unwrap();
        // two whitespace text nodes + element
        assert_eq!(doc.children(doc.root()).len(), 3);
        let toks = doc.child_tokens(doc.root());
        assert_eq!(toks.len(), 3); // σ, a, σ — δ_T counts any non-empty data
    }

    #[test]
    fn invalid_name_rejected() {
        assert!(parse("<1r/>").is_err());
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(parse(r#"<r a="<"/>"#).is_err());
    }
}
