//! Error types for XML parsing and document editing.

use std::fmt;

/// The category of an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A byte or token that is not legal at this position.
    Unexpected(String),
    /// An end tag did not match the innermost open start tag.
    MismatchedTag { open: String, close: String },
    /// A close tag appeared with no matching open tag.
    UnopenedTag(String),
    /// The document ended while elements were still open.
    UnclosedTag(String),
    /// An XML name was empty or contained an illegal character.
    InvalidName(String),
    /// A character or entity reference could not be resolved.
    InvalidReference(String),
    /// Something other than whitespace/comments/PIs at the top level,
    /// or more than one root element.
    TrailingContent,
    /// The document has no root element.
    NoRootElement,
    /// An attribute name occurred twice on the same start tag.
    DuplicateAttribute(String),
    /// An edit operation referenced a node that does not satisfy its
    /// preconditions (wrong kind, detached, out-of-range indices, …).
    InvalidEdit(String),
}

/// An error produced by the parser or by a structural edit.
///
/// Carries the byte offset into the original input where the problem was
/// detected (0 for edit errors, which are not tied to source text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// Byte offset in the source where the error was detected.
    pub offset: usize,
}

impl XmlError {
    /// Creates an error at the given byte offset.
    pub fn new(kind: XmlErrorKind, offset: usize) -> Self {
        XmlError { kind, offset }
    }

    /// Creates an edit error (no source offset).
    pub fn edit(msg: impl Into<String>) -> Self {
        XmlError { kind: XmlErrorKind::InvalidEdit(msg.into()), offset: 0 }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::Unexpected(what) => write!(f, "unexpected {what}"),
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "end tag </{close}> does not match start tag <{open}>")
            }
            XmlErrorKind::UnopenedTag(name) => write!(f, "end tag </{name}> has no start tag"),
            XmlErrorKind::UnclosedTag(name) => write!(f, "start tag <{name}> is never closed"),
            XmlErrorKind::InvalidName(name) => write!(f, "invalid XML name {name:?}"),
            XmlErrorKind::InvalidReference(r) => write!(f, "invalid reference &{r};"),
            XmlErrorKind::TrailingContent => write!(f, "content after the root element"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            XmlErrorKind::InvalidEdit(msg) => write!(f, "invalid edit: {msg}"),
        }?;
        if self.offset != 0 {
            write!(f, " (at byte {})", self.offset)?;
        }
        Ok(())
    }
}

impl std::error::Error for XmlError {}
