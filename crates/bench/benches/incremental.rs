//! X4 — incremental guard costs (Theorem 2 + Proposition 3): character
//! data operations are O(1) regardless of document size; markup insertion
//! costs two ECPV runs; a naive editor would re-check the whole document.
//!
//! The `editor_*` rows measure **applied** edits through an
//! `EditorSession`, journal bookkeeping included: since the undo layer
//! records reverse operations instead of cloning the document, the
//! per-edit cost must stay flat while the document grows 100×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::checker::PvChecker;
use pv_dtd::builtin::BuiltinDtd;
use pv_editor::EditorSession;
use pv_workload::corpus;

fn bench_incremental(c: &mut Criterion) {
    let analysis = BuiltinDtd::TeiLite.analysis();
    let checker = PvChecker::new(&analysis);
    let mut group = c.benchmark_group("incremental");

    for target in [100usize, 1000, 10000] {
        let doc = corpus::tei(target);
        let p = doc.elements().find(|&n| doc.name(n) == Some("p")).unwrap();
        let parent = doc.parent(p).unwrap();

        group.bench_with_input(BenchmarkId::new("text_insert_o1", target), &doc, |b, doc| {
            b.iter(|| checker.check_text_insertion(doc, p).preserves_pv())
        });
        group.bench_with_input(BenchmarkId::new("markup_insert_2ecpv", target), &doc, |b, doc| {
            b.iter(|| checker.check_markup_insertion(doc, p, parent).preserves_pv())
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", target), &doc, |b, doc| {
            b.iter(|| checker.check_document(doc).is_potentially_valid())
        });

        // One applied guarded edit, undo journal included (O(edit), was
        // O(document) when snapshots cloned the buffer).
        let mut session = EditorSession::open(&analysis, corpus::tei(target)).unwrap();
        let t = session
            .document()
            .descendants(session.document().root())
            .find(|&n| session.document().text(n).is_some())
            .unwrap();
        group.bench_function(BenchmarkId::new("editor_text_update", target), |b| {
            b.iter(|| session.update_text(t, "brown fox").unwrap())
        });

        // A 1000-edit editorial trace (the acceptance workload): per-edit
        // cost must not scale with document size.
        let mut trace = EditorSession::open(&analysis, corpus::tei(target)).unwrap();
        let tt = trace
            .document()
            .descendants(trace.document().root())
            .find(|&n| trace.document().text(n).is_some())
            .unwrap();
        group.bench_function(BenchmarkId::new("editor_trace_1k_edits", target), |b| {
            b.iter(|| {
                for i in 0..1000 {
                    trace.update_text(tt, if i % 2 == 0 { "alpha" } else { "beta" }).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_incremental
}
criterion_main!(benches);
