//! X4 — incremental guard costs (Theorem 2 + Proposition 3): character
//! data operations are O(1) regardless of document size; markup insertion
//! costs two ECPV runs; a naive editor would re-check the whole document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::checker::PvChecker;
use pv_dtd::builtin::BuiltinDtd;
use pv_workload::corpus;

fn bench_incremental(c: &mut Criterion) {
    let analysis = BuiltinDtd::TeiLite.analysis();
    let checker = PvChecker::new(&analysis);
    let mut group = c.benchmark_group("incremental");

    for target in [100usize, 1000, 10000] {
        let doc = corpus::tei(target);
        let p = doc.elements().find(|&n| doc.name(n) == Some("p")).unwrap();
        let parent = doc.parent(p).unwrap();

        group.bench_with_input(BenchmarkId::new("text_insert_o1", target), &doc, |b, doc| {
            b.iter(|| checker.check_text_insertion(doc, p).preserves_pv())
        });
        group.bench_with_input(BenchmarkId::new("markup_insert_2ecpv", target), &doc, |b, doc| {
            b.iter(|| checker.check_markup_insertion(doc, p, parent).preserves_pv())
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", target), &doc, |b, doc| {
            b.iter(|| checker.check_document(doc).is_potentially_valid())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_incremental
}
criterion_main!(benches);
