//! X8 — shape-memoized checking: ns/node with the verdict cache off, warm,
//! and cold, on corpora sweeping the hit-rate regime from repetitive
//! (hits dominate) to adversarial all-distinct (every lookup misses).
//!
//! `*_off` disables the cache, `*_on_warm` measures the steady state after
//! one warming pass (the editor regime: re-checks of unchanged shapes),
//! `*_on_cold` clears the cache inside the timed loop — the honest
//! overhead of interning + missing on every shape. A real-corpus pair
//! (the stripped 10k-node play document shared with `parallel_scaling`)
//! anchors the numbers outside the synthetic family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_bench::workloads;
use pv_core::checker::PvChecker;
use pv_dtd::builtin::BuiltinDtd;
use pv_workload::corpus;

fn bench_memo(c: &mut Criterion) {
    let analysis = corpus::repetitive_analysis();
    let mut group = c.benchmark_group("memo");

    for (label, distinct) in [("repetitive16", 16usize), ("adversarial", usize::MAX)] {
        let doc = workloads::memo_doc(distinct);
        let n = doc.element_count();
        group.throughput(Throughput::Elements(n as u64));

        let mut off = PvChecker::new(&analysis);
        off.set_memo_enabled(false);
        group.bench_with_input(BenchmarkId::new(format!("{label}_off"), n), &doc, |b, doc| {
            b.iter(|| off.check_document(doc).is_potentially_valid())
        });

        let warm = PvChecker::new(&analysis);
        warm.check_document(&doc); // warming pass
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_on_warm"), n),
            &doc,
            |b, doc| b.iter(|| warm.check_document(doc).is_potentially_valid()),
        );

        let cold = PvChecker::new(&analysis);
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_on_cold"), n),
            &doc,
            |b, doc| {
                b.iter(|| {
                    cold.memo_clear();
                    cold.check_document(doc).is_potentially_valid()
                })
            },
        );
    }

    // Real corpus: the stripped play document from the parallel workloads.
    let play = BuiltinDtd::Play.analysis();
    let doc = workloads::parallel_doc();
    let n = doc.element_count();
    group.throughput(Throughput::Elements(n as u64));
    let mut off = PvChecker::new(&play);
    off.set_memo_enabled(false);
    group.bench_with_input(BenchmarkId::new("play_off", n), &doc, |b, doc| {
        b.iter(|| off.check_document(doc).is_potentially_valid())
    });
    let warm = PvChecker::new(&play);
    warm.check_document(&doc);
    group.bench_with_input(BenchmarkId::new("play_on_warm", n), &doc, |b, doc| {
        b.iter(|| warm.check_document(doc).is_potentially_valid())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_memo
}
criterion_main!(benches);
