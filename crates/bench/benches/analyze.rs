//! X11 — budget certificates in the hot path: checking speculation-heavy
//! stripped corpora at the certified (reduced) speculation budget vs
//! forced back onto the full `(m+1)²` default.
//!
//! The certificate's claim is that the reduction is observationally free
//! (bit-identical outcomes, `specs_denied == 0` — asserted here before
//! timing); what the bench measures is what the constant *costs or
//! saves*: a certified context loads a fixed budget per symbol instead
//! of re-deriving the default formula. One more pair measures `certify`
//! itself — the analysis is a per-DTD constant, amortized to nothing by
//! the engine, but its absolute cost should stay microscopic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_core::checker::PvChecker;
use pv_dtd::budget;
use pv_dtd::builtin::BuiltinDtd;
use pv_workload::corpus;
use pv_workload::mutate::Mutator;

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");

    // Certified, speculation-heavy builtins: the corpus stripped of 20%
    // of its markup, so speculation requests dominate the check.
    for b in [BuiltinDtd::Play, BuiltinDtd::XhtmlBasic, BuiltinDtd::TeiLite] {
        let analysis = b.analysis();
        let report = budget::certify(&analysis);
        assert!(report.is_certified(), "{} must certify", b.name());
        let full = budget::full_budget(analysis.dtd.len());
        let mut doc = corpus::for_builtin(b, 4000).unwrap();
        let strip = doc.element_count() / 5;
        Mutator::new(9).delete_random_markup(&mut doc, strip);
        let n = doc.element_count();

        let certified = PvChecker::new(&analysis);
        let mut forced = PvChecker::new(&analysis);
        forced.set_spec_budget(full);
        let out = certified.check_document(&doc);
        assert_eq!(out.stats.specs_denied, 0, "{}: certificate broken", b.name());
        assert_eq!(out, forced.check_document(&doc), "{}: certificate broken", b.name());

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("{}_certified", b.name()), n),
            &doc,
            |bench, doc| bench.iter(|| certified.check_document(doc).is_potentially_valid()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{}_full_budget", b.name()), n),
            &doc,
            |bench, doc| bench.iter(|| forced.check_document(doc).is_potentially_valid()),
        );
    }

    // The analyzer itself: Glushkov classification + budget certification
    // over the largest builtin (a per-DTD constant the engine runs once).
    let tei = BuiltinDtd::TeiDrama.analysis();
    group.bench_function("certify_tei_drama", |bench| {
        bench.iter(|| budget::certify(&tei).applied_budget())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analyze
}
criterion_main!(benches);
