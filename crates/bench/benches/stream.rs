//! The streaming front end: whole-document throughput vs the tree
//! pipeline, O(depth) peak residency, and first-violation latency.
//!
//! The workload is a wide figure1 document — many repeated sibling
//! subtrees under a depth-3 spine — so the document is thousands of
//! times larger than the streaming checker's resident state. The peak
//! residency numbers (lexer bytes buffered, open-recognizer depth) are
//! measured once and **recorded in the benchmark ids**, so the
//! `BENCH_stream.json` baseline pins the memory claim alongside the
//! timing claim.
//!
//! `stream_first_violation` plants an unrepairable element ~1% into the
//! document: the streaming checker's verdict is final at the first
//! freeze (`StreamCheck::decided`), so it stops after a small prefix of
//! the bytes, while the tree pipeline must parse all of them before the
//! first recognizer runs. The id records how many bytes the stream
//! actually consumed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pv_bench::workloads::{stream_doc, stream_doc_poisoned};
use pv_core::checker::PvChecker;
use pv_core::stream::StreamCheck;
use pv_dtd::builtin::BuiltinDtd;

const CHUNK: usize = 64 << 10;

fn bench_stream(c: &mut Criterion) {
    let analysis = BuiltinDtd::Figure1.analysis();
    let checker = PvChecker::new(&analysis);
    let xml = stream_doc(50_000);

    // One instrumented pass pins the residency baseline: the document is
    // ~4.6 MB; the stream must hold no more than one lexer construct and
    // one recognizer per open ancestor. The lexer buffer's high-water
    // mark includes whatever chunk was last pushed (bytes drain after
    // each feed), so the probe feeds small chunks to expose the
    // construct-bound part; the timed runs below use the 64 KiB chunks a
    // real caller would.
    let mut probe = StreamCheck::new(checker.stream_checker());
    for chunk in xml.as_bytes().chunks(512) {
        probe.feed(chunk).unwrap();
    }
    let peak_buffered = probe.parser().peak_buffered();
    let peak_depth = probe.checker().peak_depth();
    assert!(peak_buffered < 4096, "residency regressed: {peak_buffered} bytes buffered");
    assert_eq!(peak_depth, 4, "spine is r/a/b/d");
    let expect = probe.finish().unwrap();
    assert!(expect.violation.is_none());

    let mut group = c.benchmark_group("stream_throughput");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function(
        format!("stream_whole_peak{peak_buffered}B_depth{peak_depth}"),
        |b| {
            b.iter(|| {
                let mut stream = StreamCheck::new(checker.stream_checker());
                for chunk in xml.as_bytes().chunks(CHUNK) {
                    stream.feed(chunk).unwrap();
                }
                stream.finish().unwrap()
            })
        },
    );
    group.bench_function("tree_whole", |b| {
        b.iter(|| {
            let doc = pv_xml::parse(&xml).unwrap();
            checker.check_document(&doc)
        })
    });
    group.finish();

    // First-violation latency: an undeclared element after ~1% of the
    // sibling groups. The streaming verdict is decided as soon as that
    // tag is lexed; the tree pipeline parses the remaining 99% first.
    let poisoned = stream_doc_poisoned(50_000);
    let mut consumed = 0usize;
    let mut early = StreamCheck::new(checker.stream_checker());
    for chunk in poisoned.as_bytes().chunks(CHUNK) {
        early.feed(chunk).unwrap();
        consumed += chunk.len();
        if early.decided() {
            break;
        }
    }
    assert!(early.decided(), "the planted violation must freeze the stream");

    let mut group = c.benchmark_group("stream_first_violation");
    group.bench_function(
        format!("stream_decided_after_{consumed}_of_{}B", poisoned.len()),
        |b| {
            b.iter(|| {
                let mut stream = StreamCheck::new(checker.stream_checker());
                for chunk in poisoned.as_bytes().chunks(CHUNK) {
                    stream.feed(chunk).unwrap();
                    if stream.decided() {
                        break;
                    }
                }
                stream.decided()
            })
        },
    );
    group.bench_function("tree_parse_then_check", |b| {
        b.iter(|| {
            let doc = pv_xml::parse(&poisoned).unwrap();
            checker.check_document(&doc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stream
}
criterion_main!(benches);
