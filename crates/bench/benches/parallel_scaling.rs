//! Parallel sharded checking: `check_document_parallel` at 1/2/4/8
//! workers against the sequential baseline on a ~10k-token document, and
//! `check_batch` over an irregular 24-document corpus.
//!
//! Per-element-node ECPV instances are independent, so on a multi-core
//! host the document check should scale near-linearly until the per-task
//! overhead (one deque pop + result tag per node) dominates. On a
//! single-core host the same bench measures exactly that overhead — both
//! numbers are worth tracking, so the bench always runs every job count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_bench::workloads::{parallel_batch, parallel_doc, PARALLEL_JOBS};
use pv_core::checker::PvChecker;
use pv_core::token::Tokens;
use pv_dtd::builtin::BuiltinDtd;

fn bench_parallel_scaling(c: &mut Criterion) {
    let analysis = BuiltinDtd::Play.analysis();
    let checker = PvChecker::new(&analysis);

    // One large in-progress document (~10k δ tokens, 20% markup stripped).
    let doc = parallel_doc();
    let n = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap().len();

    let mut group = c.benchmark_group("parallel_scaling");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("sequential", n), &doc, |b, doc| {
        b.iter(|| checker.check_document(doc).is_potentially_valid())
    });
    for jobs in PARALLEL_JOBS {
        group.bench_with_input(BenchmarkId::new(format!("jobs{jobs}"), n), &doc, |b, doc| {
            b.iter(|| checker.check_document_parallel(doc, jobs).is_potentially_valid())
        });
    }
    group.finish();

    // A corpus of 24 size-jittered documents (~800 elements each): the
    // batched API shards per document; the jitter forces steals.
    let docs = parallel_batch();
    let total: usize = docs.iter().map(|d| d.element_count()).sum();
    let mut group = c.benchmark_group("batch_checking");
    group.throughput(Throughput::Elements(total as u64));
    for jobs in PARALLEL_JOBS {
        group.bench_with_input(
            BenchmarkId::new(format!("jobs{jobs}"), docs.len()),
            &docs,
            |b, docs| b.iter(|| checker.check_batch(docs, jobs).len()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_scaling
}
criterion_main!(benches);
