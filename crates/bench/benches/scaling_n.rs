//! X1 — scaling in document size `n` (Theorem 4: the ECRecognizer is
//! linear in the input for a fixed DTD; the Earley baseline on the highly
//! ambiguous `G'` is not practical — Section 3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_core::checker::PvChecker;
use pv_core::token::Tokens;
use pv_dtd::builtin::BuiltinDtd;
use pv_grammar::ecfg::{Grammar, GrammarMode};
use pv_grammar::earley::EarleyRecognizer;
use pv_workload::corpus;
use pv_workload::mutate::Mutator;

fn bench_scaling_n(c: &mut Criterion) {
    let analysis = BuiltinDtd::Play.analysis();
    let checker = PvChecker::new(&analysis);
    let g = Grammar::new(&analysis.dtd, analysis.root, GrammarMode::PotentialValidity);
    let earley = EarleyRecognizer::new(&g);

    let mut group = c.benchmark_group("scaling_n");
    for target in [250usize, 1000, 4000, 16000] {
        let mut doc = corpus::play(target);
        Mutator::new(7).delete_random_markup(&mut doc, target / 5);
        let toks = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap();
        let n = toks.len();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("ecrecognizer", n), &doc, |b, doc| {
            b.iter(|| checker.check_document(doc).is_potentially_valid())
        });
        // Earley grows super-linearly; cap its input sizes.
        if n <= 5000 {
            group.bench_with_input(BenchmarkId::new("earley", n), &toks, |b, toks| {
                b.iter(|| earley.accepts(toks))
            });
        }
        group.bench_with_input(BenchmarkId::new("validate", n), &doc, |b, doc| {
            b.iter(|| {
                pv_grammar::validator::validate_document(doc, &analysis.dtd, analysis.root)
                    .is_ok()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling_n
}
criterion_main!(benches);
