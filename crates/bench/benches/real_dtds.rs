//! X6 — end-to-end potential-validity checking on realistic
//! document-centric corpora (play / XHTML / TEI) with 20% of the markup
//! stripped, plus the editorial-trace replay through pv-editor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_core::checker::PvChecker;
use pv_core::token::Tokens;
use pv_dtd::builtin::BuiltinDtd;
use pv_editor::EditorSession;
use pv_workload::corpus;
use pv_workload::mutate::Mutator;
use pv_workload::trace::{resolve_path, strip_and_trace, TraceOp};

fn bench_real_dtds(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_dtds");
    for b in [BuiltinDtd::Play, BuiltinDtd::XhtmlBasic, BuiltinDtd::TeiLite] {
        let analysis = b.analysis();
        let mut doc = corpus::for_builtin(b, 5000).unwrap();
        Mutator::new(1).delete_random_markup(&mut doc, 1000);
        let toks = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap();
        let checker = PvChecker::new(&analysis);
        group.throughput(Throughput::Elements(toks.len() as u64));
        group.bench_with_input(BenchmarkId::new("pv_check", b.name()), &doc, |bch, doc| {
            bch.iter(|| checker.check_document(doc).is_potentially_valid())
        });
    }

    // Editorial replay: 100 guarded wraps on a TEI document.
    let analysis = BuiltinDtd::TeiLite.analysis();
    let full = corpus::tei(600);
    let trace = strip_and_trace(&full, 100, 11);
    group.bench_function("editor_replay_100_wraps", |bch| {
        bch.iter(|| {
            let mut session = EditorSession::open(&analysis, trace.start.clone()).unwrap();
            for op in &trace.ops {
                match op {
                    TraceOp::WrapChildren { path, range, name } => {
                        let parent = resolve_path(session.document(), path).unwrap();
                        session.insert_markup(parent, range.clone(), name).unwrap();
                    }
                }
            }
            session.stats().applied
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_real_dtds
}
criterion_main!(benches);
