//! The resident service end-to-end: request latency against a live
//! `pv-service` server over a unix socket (loopback TCP where unix
//! sockets are unavailable), cold vs warm shared shape cache, and batch
//! throughput at several server-side job caps.
//!
//! Every measured iteration is a full wire round trip — client encode,
//! kernel, server parse, check (sequential or on the persistent pool),
//! JSON response, client decode — so these numbers are the ones a service
//! deployment actually sees. Compare the `inproc_*` rows (same engine, no
//! wire) to read off the protocol overhead, and `cold_*` vs `warm_*`
//! (RESET inside the loop vs a standing cache) for what the warm shared
//! cache is worth on repetitive markup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_core::engine::CheckEngine;
use pv_dtd::builtin::BuiltinDtd;
use pv_par::Pool;
use pv_service::{Client, Endpoint, Server};
use pv_workload::corpus;
use std::sync::Arc;

fn bench_service(c: &mut Criterion) {
    #[cfg(unix)]
    let endpoint = Endpoint::Unix(std::env::temp_dir().join(format!(
        "pv-service-bench-{}.sock",
        std::process::id()
    )));
    #[cfg(not(unix))]
    let endpoint = Endpoint::parse("127.0.0.1:0");
    let server = Server::bind(&endpoint, 8).expect("bind bench server");
    let mut client = Client::connect_endpoint(server.endpoint()).expect("connect");
    let dtd = client.load_builtin("play").expect("load play");

    // In-process twin of the server's engine, for wire-overhead rows.
    let engine = CheckEngine::new(BuiltinDtd::Play.analysis());
    let pool = Pool::new(8);

    let small = corpus::play(600);
    let small_xml = small.to_xml();
    let small_arc = Arc::new(small);
    let large = corpus::play(5_000);
    let large_xml = large.to_xml();

    let mut group = c.benchmark_group("service_latency");
    group.bench_function("warm_small_seq", |b| {
        b.iter(|| client.check(&dtd.handle, &small_xml, 1, true).unwrap().outcome)
    });
    group.bench_function("warm_small_jobs2", |b| {
        b.iter(|| client.check(&dtd.handle, &small_xml, 2, true).unwrap().outcome)
    });
    group.bench_function("cold_small_seq", |b| {
        b.iter(|| {
            client.reset(&dtd.handle).unwrap();
            client.check(&dtd.handle, &small_xml, 1, true).unwrap().outcome
        })
    });
    group.bench_function("warm_large_jobs8", |b| {
        b.iter(|| client.check(&dtd.handle, &large_xml, 8, true).unwrap().outcome)
    });
    group.bench_function("inproc_small_pooled", |b| {
        b.iter(|| engine.check_document_pooled(&small_arc, &pool, 2, true))
    });
    group.finish();

    // Batch throughput: 16 irregular documents per request.
    let docs = corpus::batch(BuiltinDtd::Play, 16, 400).unwrap();
    let total: usize = docs.iter().map(|d| d.element_count()).sum();
    let xmls: Vec<String> = docs.iter().map(|d| d.to_xml()).collect();
    let mut group = c.benchmark_group("service_batch");
    group.throughput(Throughput::Elements(total as u64));
    for jobs in [1usize, 2, 8] {
        group.bench_with_input(BenchmarkId::new(format!("jobs{jobs}"), total), &xmls, |b, xmls| {
            b.iter(|| client.check_batch(&dtd.handle, xmls, jobs).unwrap().len())
        });
    }
    group.finish();

    client.shutdown().expect("shutdown");
    drop(client);
    server.join();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_service
}
criterion_main!(benches);
