//! X2 — scaling in DTD size `k` (Theorem 4's O(k·D·n): for a fixed
//! document size, cost grows at most linearly with the DTD).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_core::checker::PvChecker;
use pv_core::token::Tokens;
use pv_workload::docgen::DocGen;
use pv_workload::dtdgen::{DtdGen, DtdGenParams};
use pv_workload::mutate::Mutator;

fn bench_scaling_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_k");
    for m in [8usize, 16, 32, 64, 128] {
        let mut gen = DtdGen::new(
            2024,
            DtdGenParams { elements: m, max_model_atoms: 6, ..Default::default() },
        );
        let analysis = gen.generate();
        let mut docgen = DocGen::new(&analysis, 5);
        let mut doc = docgen.generate(3000);
        let strip = doc.element_count() / 5;
        Mutator::new(5).delete_random_markup(&mut doc, strip);
        let toks = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap();
        let checker = PvChecker::new(&analysis);
        group.throughput(Throughput::Elements(toks.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("ecrecognizer", analysis.stats.k),
            &doc,
            |b, doc| b.iter(|| checker.check_document(doc).is_potentially_valid()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling_k
}
criterion_main!(benches);
