//! X9 — the speculation agenda on the adversarial recursive families: the
//! cost of *complete* recognition where the pre-agenda scheduler simply
//! (and wrongly) gave up. Reported per element node on the stripped
//! `corpus::recursive` documents, plus the exhaustive k = 2 sweep as a
//! recognizer+oracle differential throughput anchor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pv_core::checker::PvChecker;
use pv_core::depth::DepthPolicy;
use pv_grammar::oracle::EarleyOracle;
use pv_workload::{corpus, sweep};

fn bench_completeness(c: &mut Criterion) {
    let mut group = c.benchmark_group("completeness");

    // Adversarial recursive families (certified configurations): every
    // document forces elision chains down the braided lattice.
    for (depth, fanout) in [(8usize, 4usize), (32, 1), (4, 8)] {
        let analysis = corpus::recursive_analysis(depth, fanout);
        let docs = corpus::recursive(depth, fanout);
        let nodes: usize = docs.iter().map(|d| d.element_count()).sum();
        let checker = PvChecker::with_policy(&analysis, DepthPolicy::Bounded(64));
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(
            BenchmarkId::new("recursive", format!("d{depth}_f{fanout}")),
            &docs,
            |b, docs| {
                b.iter(|| {
                    docs.iter()
                        .filter(|d| checker.check_document(d).is_potentially_valid())
                        .count()
                })
            },
        );
    }

    // The exhaustive k = 2 differential sweep, recognizer side only — the
    // completeness suite's hot loop (the oracle is benched separately in
    // scaling_n; here it anchors suite wall-clock).
    let models = sweep::model_catalogue(2);
    let dtds = sweep::enumerate_dtds(2, &models);
    let docs = sweep::enumerate_documents(2, 4);
    let pairs = (dtds.len() * docs.len()) as u64;
    group.throughput(Throughput::Elements(pairs));
    group.bench_function("sweep_k2_recognizer", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for analysis in &dtds {
                let checker = PvChecker::with_policy(analysis, DepthPolicy::Bounded(64));
                for doc in &docs {
                    accepted += usize::from(checker.check_document(doc).is_potentially_valid());
                }
            }
            accepted
        })
    });

    // One oracle-inclusive differential row (smaller space): what the
    // nightly sweep actually pays per (DTD × corpus) unit.
    let models1 = sweep::model_catalogue(1);
    let dtds1 = sweep::enumerate_dtds(1, &models1);
    let docs1 = sweep::enumerate_documents(1, 5);
    group.throughput(Throughput::Elements((dtds1.len() * docs1.len()) as u64));
    group.bench_function("sweep_k1_differential", |b| {
        b.iter(|| {
            let mut divergences = 0usize;
            for analysis in &dtds1 {
                let checker = PvChecker::with_policy(analysis, DepthPolicy::Bounded(64));
                let oracle = EarleyOracle::new(analysis);
                divergences += oracle.divergences(&checker, &docs1).len();
            }
            divergences
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_completeness
}
criterion_main!(benches);
