//! X3 — cost vs. the depth bound `D` on PV-strong recursive DTDs
//! (Section 4.3.1, Examples 5–6): per-symbol work grows with D, and
//! acceptance is monotone in D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::checker::PvChecker;
use pv_core::depth::DepthPolicy;
use pv_dtd::builtin::BuiltinDtd;
use pv_workload::docgen::DocGen;
use pv_workload::mutate::Mutator;

fn bench_depth_bound(c: &mut Criterion) {
    let t2 = BuiltinDtd::T2.analysis();
    let mut group = c.benchmark_group("depth_bound");

    // The adversarial T2 chain: n b-children need n-2 elisions.
    let doc = pv_xml::parse(&format!("<a>{}</a>", "<b/>".repeat(24))).unwrap();
    for d in [2u32, 8, 22, 64] {
        let checker = PvChecker::with_policy(&t2, DepthPolicy::Bounded(d));
        group.bench_with_input(BenchmarkId::new("t2_chain24", d), &doc, |b, doc| {
            b.iter(|| checker.check_document(doc).is_potentially_valid())
        });
    }

    // A realistic PV-strong DTD with stripped markup.
    let th = BuiltinDtd::Dissertation.analysis();
    let mut docgen = DocGen::new(&th, 3);
    let mut tdoc = docgen.generate(1000);
    Mutator::new(3).delete_random_markup(&mut tdoc, 200);
    for d in [4u32, 16, 64] {
        let checker = PvChecker::with_policy(&th, DepthPolicy::Bounded(d));
        group.bench_with_input(BenchmarkId::new("dissertation1k", d), &tdoc, |b, doc| {
            b.iter(|| checker.check_document(doc).is_potentially_valid())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_depth_bound
}
criterion_main!(benches);
