//! X5 — recognizer cost across the three DTD recursion classes at a fixed
//! document size (Definitions 6–8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::checker::PvChecker;
use pv_dtd::DtdClass;
use pv_workload::docgen::DocGen;
use pv_workload::dtdgen::{DtdGen, DtdGenParams};
use pv_workload::mutate::Mutator;

fn bench_dtd_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtd_classes");
    for class in
        [DtdClass::NonRecursive, DtdClass::PvWeakRecursive, DtdClass::PvStrongRecursive]
    {
        let mut gen =
            DtdGen::new(99, DtdGenParams { elements: 16, class, ..Default::default() });
        let analysis = gen.generate();
        let mut docgen = DocGen::new(&analysis, 17);
        let mut doc = docgen.generate(2000);
        let strip = doc.element_count() / 5;
        Mutator::new(17).delete_random_markup(&mut doc, strip);
        let checker = PvChecker::new(&analysis);
        let label = match class {
            DtdClass::NonRecursive => "non_recursive",
            DtdClass::PvWeakRecursive => "pv_weak",
            DtdClass::PvStrongRecursive => "pv_strong",
        };
        group.bench_with_input(BenchmarkId::new("check", label), &doc, |b, doc| {
            b.iter(|| checker.check_document(doc).is_potentially_valid())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dtd_classes
}
criterion_main!(benches);
