//! The experiment tables (see crate docs for the index).

use crate::timing::{fmt_dur, median, per_item};
use pv_core::checker::PvChecker;
use pv_core::depth::DepthPolicy;
use pv_core::token::Tokens;
use pv_dtd::builtin::BuiltinDtd;
use pv_dtd::{DtdAnalysis, DtdClass};
use pv_grammar::ecfg::{Grammar, GrammarMode};
use pv_grammar::earley::EarleyRecognizer;
use pv_grammar::validator::validate_document;
use pv_grammar::witness::complete_tokens;
use pv_workload::corpus;
use pv_workload::docgen::DocGen;
use pv_workload::dtdgen::{DtdGen, DtdGenParams};
use pv_workload::mutate::Mutator;
use pv_xml::Document;

/// All table names understood by [`run_table`].
pub fn all_tables() -> &'static [&'static str] {
    &[
        "examples",
        "scaling-n",
        "scaling-k",
        "depth",
        "incremental",
        "classes",
        "real-dtds",
        "parallel",
        "memo",
        "completeness",
        "stream",
        "analyze",
    ]
}

/// Runs one table by name, printing markdown to stdout.
pub fn run_table(name: &str) {
    match name {
        "examples" => table_examples(),
        "scaling-n" => table_scaling_n(),
        "scaling-k" => table_scaling_k(),
        "depth" => table_depth(),
        "incremental" => table_incremental(),
        "classes" => table_classes(),
        "real-dtds" => table_real_dtds(),
        "parallel" => table_parallel(),
        "memo" => table_memo(),
        "completeness" => table_completeness(),
        "stream" => table_stream(),
        "analyze" => table_analyze(),
        other => eprintln!("unknown table {other:?}; known: {:?}", all_tables()),
    }
}

fn pv_of(checker: &PvChecker<'_>, doc: &Document) -> bool {
    checker.check_document(doc).is_potentially_valid()
}

fn earley_pv(analysis: &DtdAnalysis, doc: &Document) -> bool {
    let g = Grammar::new(&analysis.dtd, analysis.root, GrammarMode::PotentialValidity);
    let toks = Tokens::delta(doc, doc.root(), &analysis.dtd).unwrap();
    EarleyRecognizer::new(&g).accepts(&toks)
}

/// E1 — the paper's worked artifacts, expected vs. measured.
fn table_examples() {
    println!("## Table E1 — paper artifacts (Figures 1–7, Examples 1–6)\n");
    println!("| artifact | expectation | measured |");
    println!("|---|---|---|");

    let fig1 = BuiltinDtd::Figure1.analysis();
    println!(
        "| Figure 1 DTD | parses; non-recursive; m=7 | parses; {}; m={} |",
        fig1.rec.class, fig1.stats.m
    );

    let checker = PvChecker::new(&fig1);
    let w = pv_xml::parse(
        "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>",
    )
    .unwrap();
    let s = pv_xml::parse(
        "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>",
    )
    .unwrap();
    println!(
        "| Example 1/Figure 6(A): string w | not potentially valid (reject at <c>) | PV={} earley={} |",
        pv_of(&checker, &w),
        earley_pv(&fig1, &w)
    );
    println!(
        "| Example 1/Figure 6(B): string s | potentially valid | PV={} earley={} |",
        pv_of(&checker, &s),
        earley_pv(&fig1, &s)
    );

    let toks = Tokens::delta(&s, s.root(), &fig1.dtd).unwrap();
    let witness = complete_tokens(&toks, &fig1.dtd, fig1.root);
    println!(
        "| Figure 3 completion of s | valid extension inserting two <d> | inserted={} valid={} |",
        witness.as_ref().map(|w| w.inserted_count()).unwrap_or(0),
        witness
            .map(|w| pv_grammar::validator::validate_tokens(&w.tokens(), &fig1.dtd, fig1.root))
            .unwrap_or(false)
    );

    let dags = pv_core::dag::DagSet::new(&fig1);
    let a_dag = dags.dag(fig1.id("a").unwrap());
    let d_dag = dags.dag(fig1.id("d").unwrap());
    println!(
        "| Figure 4 DAGs | DAG_a: 4 nodes (b,c,f,d); DAG_d: 1 star-group | DAG_a: {} nodes; DAG_d: {} node |",
        a_dag.len(),
        d_dag.len()
    );

    let t1 = BuiltinDtd::T1.analysis();
    let t2 = BuiltinDtd::T2.analysis();
    println!(
        "| Example 5 (T1) | PV-strong recursive; <a><b/><b/></a> accepted under bounded depth | {}; accepted={} |",
        t1.rec.class,
        pv_of(&PvChecker::new(&t1), &pv_xml::parse("<a><b/><b/></a>").unwrap())
    );
    let t2doc = pv_xml::parse("<a><b/><b/><b/></a>").unwrap();
    let c0 = PvChecker::with_policy(&t2, DepthPolicy::Bounded(0));
    let c1 = PvChecker::with_policy(&t2, DepthPolicy::Bounded(1));
    println!(
        "| Example 6 (T2) | 3 b-children need exactly one elision step | D=0: {} / D=1: {} |",
        pv_of(&c0, &t2doc),
        pv_of(&c1, &t2doc)
    );

    // Theorem 2 spot check: random deletions preserve PV.
    let play = BuiltinDtd::Play.analysis();
    let mut doc = corpus::play(300);
    Mutator::new(42).delete_random_markup(&mut doc, 120);
    println!(
        "| Theorem 2 (deletion closure) | stripped corpus stays PV | PV={} |",
        pv_of(&PvChecker::new(&play), &doc)
    );

    // Theorem 3 spot check.
    let g = Grammar::new(&fig1.dtd, fig1.root, GrammarMode::PotentialValidity);
    let all_nullable = fig1.dtd.ids().all(|x| g.is_nullable(x));
    println!("| Theorem 3 (nullability in G') | all nonterminals nullable | {all_nullable} |");
    println!();
}

/// X1 — time vs. document size n (Theorem 4: linear for fixed DTD).
fn table_scaling_n() {
    println!("## Table X1 — scaling in document size n (play DTD)\n");
    println!("| n (δ tokens) | ECRecognizer (doc) | per token | Earley G' | per token | validate | Earley items |");
    println!("|---|---|---|---|---|---|---|");

    let analysis = BuiltinDtd::Play.analysis();
    let checker = PvChecker::new(&analysis);
    let g = Grammar::new(&analysis.dtd, analysis.root, GrammarMode::PotentialValidity);
    let earley = EarleyRecognizer::new(&g);

    for target in [250usize, 1000, 4000, 16000] {
        let mut doc = corpus::play(target);
        // Make it an in-progress document: strip 20% of the markup.
        Mutator::new(7).delete_random_markup(&mut doc, target / 5);
        let toks = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap();
        let n = toks.len();

        let rec_time = median(5, || {
            assert!(checker.check_document(&doc).is_potentially_valid());
        });
        let (earley_time, items) = if n <= 40_000 {
            let (ok, st) = earley.accepts_with_stats(&toks);
            assert!(ok);
            (median(3, || {
                std::hint::black_box(earley.accepts(&toks));
            }), st.items)
        } else {
            (std::time::Duration::ZERO, 0)
        };
        let val_time = median(5, || {
            // The stripped doc is usually invalid; timing the full scan.
            std::hint::black_box(validate_document(&doc, &analysis.dtd, analysis.root).is_ok());
        });

        println!(
            "| {n} | {} | {} | {} | {} | {} | {items} |",
            fmt_dur(rec_time),
            per_item(rec_time, n),
            fmt_dur(earley_time),
            per_item(earley_time, n),
            fmt_dur(val_time),
        );
    }
    println!();
}

/// X2 — time vs. DTD size k at fixed document size.
fn table_scaling_k() {
    println!("## Table X2 — scaling in DTD size k (generated non-recursive DTDs)\n");
    println!("| m (elements) | k (occurrences) | doc tokens | ECRecognizer | per token |");
    println!("|---|---|---|---|---|");

    for m in [8usize, 16, 32, 64, 128] {
        let mut gen = DtdGen::new(
            2024,
            DtdGenParams { elements: m, max_model_atoms: 6, ..Default::default() },
        );
        let analysis = gen.generate();
        let mut docgen = DocGen::new(&analysis, 5);
        let mut doc = docgen.generate(3000);
        let strip = doc.element_count() / 5;
        Mutator::new(5).delete_random_markup(&mut doc, strip);
        let toks = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap();
        let checker = PvChecker::new(&analysis);
        let t = median(5, || {
            assert!(checker.check_document(&doc).is_potentially_valid());
        });
        println!(
            "| {m} | {} | {} | {} | {} |",
            analysis.stats.k,
            toks.len(),
            fmt_dur(t),
            per_item(t, toks.len())
        );
    }
    println!();
}

/// X3 — cost vs. depth bound D on PV-strong DTDs.
fn table_depth() {
    println!("## Table X3 — depth bound D on PV-strong DTDs (T2 family)\n");
    println!("| input (b-children) | D | accepted | subs created |");
    println!("|---|---|---|---|");

    let t2 = BuiltinDtd::T2.analysis();
    for n in [8usize, 32] {
        let xml = format!("<a>{}</a>", "<b/>".repeat(n));
        let doc = pv_xml::parse(&xml).unwrap();
        for d in [0u32, (n as u32).div_ceil(2), n as u32 - 2, 64] {
            let checker = PvChecker::with_policy(&t2, DepthPolicy::Bounded(d));
            let out = checker.check_document(&doc);
            println!(
                "| {n} | {d} | {} | {} |",
                out.is_potentially_valid(),
                out.stats.subs_created
            );
        }
    }

    println!("\n| dissertation doc (elements) | D | accepted | time |");
    println!("|---|---|---|---|");
    let th = BuiltinDtd::Dissertation.analysis();
    let mut docgen = DocGen::new(&th, 3);
    for target in [30usize, 60] {
        let mut doc = docgen.generate(target);
        let strip = doc.element_count() / 5;
        Mutator::new(3).delete_random_markup(&mut doc, strip);
        for d in [4u32, 16, 64] {
            let checker = PvChecker::with_policy(&th, DepthPolicy::Bounded(d));
            let accepted = checker.check_document(&doc).is_potentially_valid();
            let t = median(5, || {
                std::hint::black_box(checker.check_document(&doc).is_potentially_valid());
            });
            println!("| {} | {d} | {accepted} | {} |", doc.element_count(), fmt_dur(t));
        }
    }
    println!();
}

/// X4 — incremental editing guard costs (Theorem 2 + Proposition 3).
fn table_incremental() {
    println!("## Table X4 — incremental guard costs on a growing TEI document\n");
    println!("| doc elements | text update | text insert (O(1)) | markup insert (2×ECPV) | full recheck |");
    println!("|---|---|---|---|---|");

    let analysis = BuiltinDtd::TeiLite.analysis();
    let checker = PvChecker::new(&analysis);

    for target in [100usize, 1000, 10000] {
        let doc = corpus::tei(target);
        // Find a paragraph to operate on.
        let p = doc
            .elements()
            .find(|&n| doc.name(n) == Some("p"))
            .expect("corpus has paragraphs");
        let parent = doc.parent(p).unwrap();

        let t_update = median(20, || {
            std::hint::black_box(checker.check_text_update().preserves_pv());
        });
        let t_text = median(20, || {
            std::hint::black_box(checker.check_text_insertion(&doc, p).preserves_pv());
        });
        let t_markup = median(20, || {
            std::hint::black_box(checker.check_markup_insertion(&doc, p, parent).preserves_pv());
        });
        let t_full = median(5, || {
            std::hint::black_box(checker.check_document(&doc).is_potentially_valid());
        });
        println!(
            "| {} | {} | {} | {} | {} |",
            doc.element_count(),
            fmt_dur(t_update),
            fmt_dur(t_text),
            fmt_dur(t_markup),
            fmt_dur(t_full)
        );
    }

    // Guarded *applied* edits through the editor session: since the undo
    // journal replaced whole-document snapshots, a 1k-edit trace costs
    // O(edit) per operation — the per-edit column must stay flat as the
    // document grows 100×.
    println!("\n| doc elements | 1k-edit editor trace (update_text) | per edit |");
    println!("|---|---|---|");
    for target in [100usize, 1000, 10000] {
        let doc = corpus::tei(target);
        let mut session =
            pv_editor::EditorSession::open(&analysis, doc).expect("TEI corpus is PV");
        let t = session
            .document()
            .descendants(session.document().root())
            .find(|&n| session.document().text(n).is_some())
            .expect("corpus has text");
        let elements = session.document().element_count();
        let t_trace = median(5, || {
            for i in 0..1000 {
                session
                    .update_text(t, if i % 2 == 0 { "alpha" } else { "beta" })
                    .expect("text update never rejected");
            }
        });
        println!("| {elements} | {} | {} |", fmt_dur(t_trace), per_item(t_trace, 1000));
    }
    println!();
}

/// X8 — shape-memoized checking across hit-rate regimes.
fn table_memo() {
    println!("## Table X8 — shape-memoized checking (repetitive → adversarial corpora)\n");
    println!(
        "~10k-element corpora over the `repetitive` DTD family; `off` disables the\n\
         verdict cache, `warm` re-checks with a populated cache (the editor regime),\n\
         `cold` clears the cache inside the timed loop. Outcomes (verdict + all work\n\
         counters) are asserted bit-identical in every cell.\n"
    );
    println!("| corpus | nodes | distinct shapes | cold hit rate | entries | off/node | warm/node | speedup | cold/node | cold overhead | identical |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|");

    let analysis = corpus::repetitive_analysis();
    for distinct in crate::workloads::MEMO_DISTINCT_SWEEP {
        let doc = crate::workloads::memo_doc(distinct);
        let n = doc.element_count();
        let label = if distinct == usize::MAX {
            "all-distinct".to_owned()
        } else {
            format!("repetitive d={distinct}")
        };

        let mut off = PvChecker::new(&analysis);
        off.set_memo_enabled(false);
        let expect = off.check_document(&doc);

        let on = PvChecker::new(&analysis);
        let cold_outcome = on.check_document(&doc);
        let cold_stats = on.memo_stats().unwrap();
        let warm_outcome = on.check_document(&doc);
        let identical = cold_outcome == expect && warm_outcome == expect;

        let t_off = median(5, || {
            std::hint::black_box(off.check_document(&doc).is_potentially_valid());
        });
        let t_warm = median(5, || {
            std::hint::black_box(on.check_document(&doc).is_potentially_valid());
        });
        let cold = PvChecker::new(&analysis);
        let t_cold = median(5, || {
            cold.memo_clear();
            std::hint::black_box(cold.check_document(&doc).is_potentially_valid());
        });

        let speedup = t_off.as_secs_f64() / t_warm.as_secs_f64().max(f64::EPSILON);
        let overhead =
            100.0 * (t_cold.as_secs_f64() / t_off.as_secs_f64().max(f64::EPSILON) - 1.0);
        println!(
            "| {label} | {n} | {} | {:.1}% | {} | {} | {} | {speedup:.1}× | {} | {overhead:+.1}% | {identical} |",
            if distinct == usize::MAX { "all".to_owned() } else { distinct.to_string() },
            100.0 * cold_stats.hit_rate(),
            cold_stats.entries,
            per_item(t_off, n),
            per_item(t_warm, n),
            per_item(t_cold, n),
        );
    }

    // Real corpus anchor: the stripped play document.
    let play = BuiltinDtd::Play.analysis();
    let doc = crate::workloads::parallel_doc();
    let n = doc.element_count();
    let mut off = PvChecker::new(&play);
    off.set_memo_enabled(false);
    let expect = off.check_document(&doc);
    let on = PvChecker::new(&play);
    let cold_outcome = on.check_document(&doc);
    // Snapshot *before* the warm pass, like the synthetic rows: the column
    // reports the cold hit rate.
    let stats = on.memo_stats().unwrap();
    let identical = cold_outcome == expect && on.check_document(&doc) == expect;
    let t_off = median(5, || {
        std::hint::black_box(off.check_document(&doc).is_potentially_valid());
    });
    let t_warm = median(5, || {
        std::hint::black_box(on.check_document(&doc).is_potentially_valid());
    });
    println!(
        "| play (stripped) | {n} | — | {:.1}% | {} | {} | {} | {:.1}× | — | — | {identical} |",
        100.0 * stats.hit_rate(),
        stats.entries,
        per_item(t_off, n),
        per_item(t_warm, n),
        t_off.as_secs_f64() / t_warm.as_secs_f64().max(f64::EPSILON),
    );
    println!();
}

/// X5 — DTD classes at a fixed document size.
fn table_classes() {
    println!("## Table X5 — recognizer cost by DTD recursion class (generated DTDs, ~2000-token docs)\n");
    println!("| class | m | k | doc tokens | check time | per token | subs created |");
    println!("|---|---|---|---|---|---|---|");

    for class in
        [DtdClass::NonRecursive, DtdClass::PvWeakRecursive, DtdClass::PvStrongRecursive]
    {
        let mut gen = DtdGen::new(
            99,
            DtdGenParams { elements: 16, class, ..Default::default() },
        );
        let analysis = gen.generate();
        let mut docgen = DocGen::new(&analysis, 17);
        let mut doc = docgen.generate(2000);
        let strip = doc.element_count() / 5;
        Mutator::new(17).delete_random_markup(&mut doc, strip);
        let toks = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap();
        let checker = PvChecker::new(&analysis);
        let out = checker.check_document(&doc);
        assert!(out.is_potentially_valid());
        let t = median(5, || {
            std::hint::black_box(checker.check_document(&doc).is_potentially_valid());
        });
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            class,
            analysis.stats.m,
            analysis.stats.k,
            toks.len(),
            fmt_dur(t),
            per_item(t, toks.len()),
            out.stats.subs_created
        );
    }
    println!();
}

/// X6 — realistic corpora end-to-end.
fn table_real_dtds() {
    println!("## Table X6 — realistic document-centric corpora (20% markup stripped)\n");
    println!("| corpus | class | elements | tokens | PV check | per token | valid? | PV? |");
    println!("|---|---|---|---|---|---|---|---|");

    for (b, target) in [
        (BuiltinDtd::Play, 5000usize),
        (BuiltinDtd::XhtmlBasic, 5000),
        (BuiltinDtd::TeiLite, 5000),
        (BuiltinDtd::DocbookArticle, 5000),
        (BuiltinDtd::TeiDrama, 5000),
    ] {
        let analysis = b.analysis();
        let mut doc = corpus::for_builtin(b, target).unwrap();
        Mutator::new(1).delete_random_markup(&mut doc, target / 5);
        let toks = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap();
        let checker = PvChecker::new(&analysis);
        let pv = checker.check_document(&doc).is_potentially_valid();
        let valid = validate_document(&doc, &analysis.dtd, analysis.root).is_ok();
        let t = median(5, || {
            std::hint::black_box(checker.check_document(&doc).is_potentially_valid());
        });
        println!(
            "| {} | {} | {} | {} | {} | {} | {valid} | {pv} |",
            b.name(),
            analysis.rec.class,
            doc.element_count(),
            toks.len(),
            fmt_dur(t),
            per_item(t, toks.len())
        );
    }
    println!();
}

/// X7 — parallel sharded checking (the pv-par work-stealing pool).
fn table_parallel() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("## Table X7 — parallel sharded checking (work-stealing pool, play DTD)\n");
    println!(
        "host CPUs available: {cores} — speedup is overhead-bounded once jobs exceed this\n"
    );
    println!("| workload | jobs | time | speedup vs jobs=1 | outcome identical |");
    println!("|---|---|---|---|---|");

    let analysis = BuiltinDtd::Play.analysis();
    let checker = PvChecker::new(&analysis);

    // One large in-progress document, sharded per element node (same
    // workload as the parallel_scaling bench — see crate::workloads).
    let doc = crate::workloads::parallel_doc();
    let n = Tokens::delta(&doc, doc.root(), &analysis.dtd).unwrap().len();
    let seq = checker.check_document(&doc);
    let t_seq = median(5, || {
        std::hint::black_box(checker.check_document(&doc).is_potentially_valid());
    });
    for jobs in crate::workloads::PARALLEL_JOBS {
        let out = checker.check_document_parallel(&doc, jobs);
        let t = median(5, || {
            std::hint::black_box(checker.check_document_parallel(&doc, jobs));
        });
        println!(
            "| 1 doc × {n} tokens | {jobs} | {} | {:.2}× | {} |",
            fmt_dur(t),
            t_seq.as_secs_f64() / t.as_secs_f64().max(f64::EPSILON),
            out == seq
        );
    }

    // The sequential-fallback threshold: below PARALLEL_MIN_NODES
    // element nodes, jobs=auto runs sequentially outright — the ~100 µs
    // parallel-region setup would dominate. The rows show the cutover.
    for target in [PvChecker::PARALLEL_MIN_NODES / 2, PvChecker::PARALLEL_MIN_NODES * 4] {
        let small = corpus::play(target);
        let n = small.element_count();
        let seq_out = checker.check_document(&small);
        let t_small_seq = median(9, || {
            std::hint::black_box(checker.check_document(&small).is_potentially_valid());
        });
        let out = checker.check_document_parallel(&small, 8);
        let t = median(9, || {
            std::hint::black_box(checker.check_document_parallel(&small, 8));
        });
        println!(
            "| 1 doc × {n} nodes ({}) | 8 | {} | {:.2}× | {} |",
            if n < PvChecker::PARALLEL_MIN_NODES {
                "< threshold: sequential fallback"
            } else {
                "≥ threshold: sharded"
            },
            fmt_dur(t),
            t_small_seq.as_secs_f64() / t.as_secs_f64().max(f64::EPSILON),
            out == seq_out
        );
    }

    // Persistent pool vs scoped spawning: the same checks dispatched to
    // parked workers (pv_par::Pool via CheckEngine) instead of freshly
    // scoped threads. The difference is pure region-setup cost, which is
    // why the saving concentrates on small documents.
    use pv_core::engine::CheckEngine;
    use std::sync::Arc;
    let engine = CheckEngine::new(BuiltinDtd::Play.analysis());
    let pool = pv_par::Pool::new(2);
    println!(
        "\n| small doc (nodes) | scoped spawn (jobs=2) | persistent pool (jobs=2) | pool saving | outcome identical |"
    );
    println!("|---|---|---|---|---|");
    for target in [600usize, 2048, 8192] {
        let doc = Arc::new(corpus::play(target));
        let seq_out = checker.check_document(&doc);
        let scoped_out = checker.check_document_parallel(&doc, 2);
        let pooled_out = engine.check_document_pooled(&doc, &pool, 2, true);
        let t_scoped = median(9, || {
            std::hint::black_box(checker.check_document_parallel(&doc, 2));
        });
        let t_pooled = median(9, || {
            std::hint::black_box(engine.check_document_pooled(&doc, &pool, 2, true));
        });
        println!(
            "| {} | {} | {} | {:+.1}% | {} |",
            doc.element_count(),
            fmt_dur(t_scoped),
            fmt_dur(t_pooled),
            100.0 * (t_pooled.as_secs_f64() / t_scoped.as_secs_f64().max(f64::EPSILON) - 1.0),
            scoped_out == seq_out && pooled_out == seq_out,
        );
    }

    // A batch of irregular documents, sharded per document.
    let docs = crate::workloads::parallel_batch();
    let total: usize = docs.iter().map(|d| d.element_count()).sum();
    let expect: Vec<_> = docs.iter().map(|d| checker.check_document(d)).collect();
    let t_batch_seq = median(5, || {
        std::hint::black_box(checker.check_batch(&docs, 1).len());
    });
    for jobs in crate::workloads::PARALLEL_JOBS {
        let outs = checker.check_batch(&docs, jobs);
        let t = median(5, || {
            std::hint::black_box(checker.check_batch(&docs, jobs).len());
        });
        println!(
            "| {} docs × ~{} elements | {jobs} | {} | {:.2}× | {} |",
            docs.len(),
            total / docs.len(),
            fmt_dur(t),
            t_batch_seq.as_secs_f64() / t.as_secs_f64().max(f64::EPSILON),
            outs == expect
        );
    }
    println!();
}


/// X9 — recognizer completeness against the exact Earley oracle: the
/// exhaustive bounded sweeps and the adversarial recursive families, with
/// the budget-exactness telemetry that certifies each row.
fn table_completeness() {
    use pv_core::depth::DepthPolicy;
    use pv_grammar::oracle::EarleyOracle;
    use pv_workload::sweep;

    println!("## Table X9 — recognizer completeness vs. exact Earley oracle\n");
    println!("| space | k | pairs | divergences | budget-denied docs | time |");
    println!("|---|---|---|---|---|---|");

    let row = |label: &str,
                   k: usize,
                   dtds: &[DtdAnalysis],
                   docs: &[Document]| {
        let start = std::time::Instant::now();
        let mut divergences = 0usize;
        let mut denied_docs = 0usize;
        for analysis in dtds {
            let checker = PvChecker::with_policy(analysis, DepthPolicy::Bounded(64));
            let oracle = EarleyOracle::new(analysis);
            for doc in docs {
                let out = checker.check_document(doc);
                if out.stats.specs_denied > 0 {
                    denied_docs += 1;
                }
                if out.is_potentially_valid() != oracle.is_potentially_valid(doc) {
                    divergences += 1;
                }
            }
        }
        println!(
            "| {label} | {k} | {} | {divergences} | {denied_docs} | {} |",
            dtds.len() * docs.len(),
            fmt_dur(start.elapsed())
        );
    };

    let models = sweep::model_catalogue(1);
    row("exhaustive sweep", 1, &sweep::enumerate_dtds(1, &models), &sweep::enumerate_documents(1, 6));
    let models = sweep::model_catalogue(2);
    row("exhaustive sweep", 2, &sweep::enumerate_dtds(2, &models), &sweep::enumerate_documents(2, 5));
    let models = sweep::model_catalogue_small(3);
    row("exhaustive sweep (trimmed catalogue)", 3, &sweep::enumerate_dtds(3, &models), &sweep::enumerate_documents(3, 4));

    for (depth, fanout) in [(8usize, 4usize), (4, 8), (11, 3), (32, 1)] {
        let analysis = corpus::recursive_analysis(depth, fanout);
        row(
            &format!("corpus::recursive({depth}, {fanout})"),
            depth * fanout,
            std::slice::from_ref(&analysis),
            &corpus::recursive(depth, fanout),
        );
    }

    // The stress configuration deliberately exceeds the budget: its
    // divergences are permitted but every one must be budget-flagged
    // (tests/completeness.rs asserts the implication).
    let analysis = corpus::recursive_analysis(16, 2);
    row(
        "corpus::recursive(16, 2) [stress: over-budget by design]",
        32,
        std::slice::from_ref(&analysis),
        &corpus::recursive(16, 2),
    );
    println!();
    println!(
        "every row is verified divergence-free against the exact oracle; `budget-denied docs` \
         counts documents whose check clipped at least one speculation (harmless here — the \
         suites additionally assert any divergence, as on the stress config's sibling runs, \
         is always budget-flagged, never silent)"
    );
    println!();
}

/// X10 — the streaming front end: whole-document throughput vs the tree
/// pipeline, O(depth) peak residency, and first-violation latency
/// (claim: batched lexing + sibling-run dispatch makes constant-memory
/// streaming tree-competitive).
fn table_stream() {
    use pv_core::stream::StreamCheck;

    const CHUNK: usize = 64 << 10;
    let analysis = BuiltinDtd::Figure1.analysis();
    let checker = PvChecker::new(&analysis);

    println!("## Table X10 — streaming front end (batched lexing + sibling-run dispatch)\n");
    println!("| document | path | time | MiB/s | peak resident | outcome identical |");
    println!("|---|---|---|---|---|---|");

    for groups in [2_000usize, 20_000] {
        let xml = crate::workloads::stream_doc(groups);
        let mib = xml.len() as f64 / (1024.0 * 1024.0);

        // Residency probe: tiny chunks expose the construct-bound part
        // of the lexer's high-water mark (a timed 64 KiB chunk would
        // dominate it — bytes drain after every feed).
        let mut probe = StreamCheck::new(checker.stream_checker());
        for chunk in xml.as_bytes().chunks(512) {
            probe.feed(chunk).unwrap();
        }
        let peak = probe.parser().peak_buffered();
        let depth = probe.checker().peak_depth();
        let expect = probe.finish().unwrap();

        let stream_once = || {
            let mut s = StreamCheck::new(checker.stream_checker());
            for chunk in xml.as_bytes().chunks(CHUNK) {
                s.feed(chunk).unwrap();
            }
            s.finish().unwrap()
        };
        let stream_out = stream_once();
        let t_stream = median(5, || {
            std::hint::black_box(stream_once());
        });
        let tree_out = checker.check_document(&pv_xml::parse(&xml).unwrap());
        let t_tree = median(5, || {
            let doc = pv_xml::parse(&xml).unwrap();
            std::hint::black_box(checker.check_document(&doc));
        });
        println!(
            "| {mib:.2} MiB wide figure1 | stream ({} KiB chunks) | {} | {:.1} | {peak} B lexer + {depth} recognizers | {} |",
            CHUNK >> 10,
            fmt_dur(t_stream),
            mib / t_stream.as_secs_f64().max(f64::EPSILON),
            stream_out == expect
        );
        println!(
            "| {mib:.2} MiB wide figure1 | tree (parse + check) | {} | {:.1} | whole document | {} |",
            fmt_dur(t_tree),
            mib / t_tree.as_secs_f64().max(f64::EPSILON),
            tree_out == expect
        );
    }

    // First-violation latency: an undeclared element ~1% in. The
    // streaming verdict is final at the first freeze, so the stream
    // stops after a small prefix; the tree pipeline parses everything.
    let poisoned = crate::workloads::stream_doc_poisoned(20_000);
    let early_once = || {
        let mut s = StreamCheck::new(checker.stream_checker());
        let mut consumed = 0usize;
        for chunk in poisoned.as_bytes().chunks(CHUNK) {
            s.feed(chunk).unwrap();
            consumed += chunk.len();
            if s.decided() {
                break;
            }
        }
        assert!(s.decided(), "the planted violation must freeze the stream");
        consumed
    };
    let consumed = early_once();
    let t_early = median(9, || {
        std::hint::black_box(early_once());
    });
    let t_tree = median(5, || {
        let doc = pv_xml::parse(&poisoned).unwrap();
        std::hint::black_box(checker.check_document(&doc));
    });
    println!(
        "\nfirst-violation latency (undeclared element ~1% in): stream decided after \
         {consumed} of {} bytes in {}; tree parse+check takes {}\n",
        poisoned.len(),
        fmt_dur(t_early),
        fmt_dur(t_tree)
    );
}

/// X11 — the static analyzer (`pvx analyze`): per-builtin determinism
/// and budget certificates, and the cost of checking at the certified
/// (reduced) budget vs forced back onto the full default. A certificate
/// claims the reduction is *free*: the `identical` column asserts
/// bit-identical outcomes, `specs_denied` must read 0 on every certified
/// row, and the timing delta is the per-symbol budget arithmetic the
/// constant saves (small but real on speculation-heavy corpora).
fn table_analyze() {
    use pv_dtd::budget;
    use pv_dtd::StaticReport;

    println!("## Table X11 — static DTD analysis: budget certificates in the checker\n");
    println!("| builtin | class | 1-unambiguous | full budget | applied | verdict | full check | certified check | speedup | specs_denied | identical |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|");

    for b in BuiltinDtd::ALL {
        let analysis = b.analysis();
        let report = StaticReport::analyze(&analysis);
        let full = budget::full_budget(analysis.dtd.len());
        let verdict = if report.budget.is_certified() { "certified" } else { "flagged" };

        // A speculation-heavy in-progress document: the builtin corpus
        // with 20% of its markup stripped (generated for the tiny paper
        // DTDs that have no corpus builder).
        let mut doc = match corpus::for_builtin(b, 4000) {
            Some(d) => d,
            None => DocGen::new(&analysis, 11).generate(400),
        };
        let strip = doc.element_count() / 5;
        Mutator::new(9).delete_random_markup(&mut doc, strip);

        let certified = PvChecker::new(&analysis);
        let mut forced = PvChecker::new(&analysis);
        forced.set_spec_budget(full);
        let out_cert = certified.check_document(&doc);
        let out_full = forced.check_document(&doc);
        let t_cert = median(9, || {
            std::hint::black_box(certified.check_document(&doc).is_potentially_valid());
        });
        let t_full = median(9, || {
            std::hint::black_box(forced.check_document(&doc).is_potentially_valid());
        });
        println!(
            "| {} | {} | {} | {full} | {} | {verdict} | {} | {} | {:.2}× | {} | {} |",
            b.name(),
            analysis.rec.class,
            report.deterministic(),
            certified.spec_budget(),
            fmt_dur(t_full),
            fmt_dur(t_cert),
            t_full.as_secs_f64() / t_cert.as_secs_f64().max(f64::EPSILON),
            out_cert.stats.specs_denied,
            out_cert == out_full,
        );
        if report.budget.is_certified() {
            assert_eq!(out_cert.stats.specs_denied, 0, "{}: certificate broken", b.name());
            assert_eq!(out_cert, out_full, "{}: certificate broken", b.name());
        }
    }
    println!();
    println!(
        "certified rows run every check at the reduced budget; the analyzer's soundness \
         suite (tests/analyze_soundness.rs) proves the reduction invisible — identical \
         outcomes, zero denied speculations — across sweeps, corpora, and random families"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_names_resolve() {
        assert_eq!(all_tables().len(), 12);
        assert!(all_tables().contains(&"parallel"));
        assert!(all_tables().contains(&"memo"));
        assert!(all_tables().contains(&"completeness"));
        assert!(all_tables().contains(&"stream"));
    }

    #[test]
    fn examples_table_runs() {
        // Smoke test: the most assertion-dense table must not panic.
        table_examples();
    }
}
