//! Experiment runner: regenerates the tables recorded in EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p pv-bench --bin experiments            # all tables
//!   cargo run --release -p pv-bench --bin experiments -- --table scaling-n

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut requested: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" | "-t" => {
                i += 1;
                match args.get(i) {
                    Some(t) => requested.push(t.as_str()),
                    None => {
                        eprintln!("--table requires a name; known: {:?}", pv_bench::all_tables());
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for t in pv_bench::all_tables() {
                    println!("{t}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--table NAME]...  (default: all)\nknown tables: {:?}",
                    pv_bench::all_tables()
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("# Potential-validity experiment tables\n");
    if requested.is_empty() {
        for t in pv_bench::all_tables() {
            pv_bench::run_table(t);
        }
    } else {
        for t in requested {
            pv_bench::run_table(t);
        }
    }
}
