//! Minimal wall-clock measurement used by the `experiments` binary.
//! (Criterion handles the statistically careful runs; these tables favour
//! quick, readable numbers.)

use std::time::{Duration, Instant};

/// Runs `f` once for warmup, then `samples` times, returning the median
/// duration.
pub fn median<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    f(); // warmup
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Pretty-prints a duration with ns/µs/ms resolution.
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// ns-per-item rate.
pub fn per_item(d: Duration, items: usize) -> String {
    if items == 0 {
        return "-".to_owned();
    }
    format!("{:.1} ns", d.as_nanos() as f64 / items as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive() {
        let d = median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn formatting() {
        assert!(fmt_dur(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_dur(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(20)).ends_with(" s"));
        assert_eq!(per_item(Duration::from_nanos(1000), 0), "-");
        assert_eq!(per_item(Duration::from_nanos(1000), 10), "100.0 ns");
    }
}
