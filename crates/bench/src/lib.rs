//! # pv-bench — experiment harness
//!
//! The ICDE 2006 paper is an algorithms paper with no measurement section;
//! its quantitative content is a set of complexity claims (Theorem 4's
//! `O(k·D·n)`, Proposition 3's O(1) content updates, and the argument that
//! Earley-style parsing of the highly ambiguous `G'` is impractical). This
//! crate regenerates **every** paper artifact and claim as tables:
//!
//! * `experiments --table examples` — Figures 1–7 / Examples 1–6 as
//!   executable checks (expected vs. measured);
//! * `experiments --table scaling-n` — wall-time vs. document size for
//!   ECRecognizer / Earley / standard validation (claim X1, Theorem 4);
//! * `experiments --table scaling-k` — vs. DTD size `k` (claim X2);
//! * `experiments --table depth` — vs. depth bound `D` on PV-strong DTDs
//!   (claim X3, Examples 5–6);
//! * `experiments --table incremental` — per-operation costs of the
//!   editing guards (claim X4, Theorem 2 + Proposition 3);
//! * `experiments --table classes` — DTD classes at fixed size (claim X5);
//! * `experiments --table real-dtds` — realistic corpora (claim X6);
//! * `experiments --table parallel` — sharded checking on the pv-par
//!   work-stealing pool: per-node sharding of one large document,
//!   two-level sharding of a batch, and the persistent-pool-vs-scoped
//!   region-setup comparison, with speedup vs. the sequential checker
//!   and an outcome-identity column (claim X7 — this reproduction's own
//!   addition; the paper is purely sequential);
//! * `experiments --table memo` — shape-memoized checking (claim X8, also
//!   an addition): ns/node with the verdict cache off / warm / cold over
//!   the `repetitive` corpus family's hit-rate sweep, with hit rate,
//!   resident cache entries, and a bit-identity column per row;
//! * `experiments --table completeness` — recognizer completeness against
//!   the exact Earley oracle (claim X9): exhaustive bounded sweeps plus
//!   adversarial recursive families, with budget-exactness telemetry;
//! * `experiments --table stream` — the streaming front end (claim X10):
//!   MiB/s vs the tree pipeline, O(depth) peak residency, and
//!   first-violation latency, each row with an outcome-identity column.
//!
//! The same workloads back the Criterion benches under `benches/`
//! (including `parallel_scaling` and the end-to-end `service` bench,
//! which measures full wire round trips against a live `pv-service`
//! server). Set `BENCH_JSON=path` while running
//! `cargo bench` to also append machine-readable results to a JSON file —
//! the repository's `BENCH_*.json` baselines are captured that way (see
//! BENCHMARKS.md at the repo root).

pub mod experiments;
pub mod timing;
pub mod workloads;

pub use experiments::{all_tables, run_table};
