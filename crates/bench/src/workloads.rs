//! Canonical workloads shared by the criterion benches and the
//! `experiments` tables, so the checked-in `BENCH_*.json` baselines and
//! the printed claim tables always measure **the same thing** — retuning
//! a workload here retunes both consumers at once.

use pv_dtd::builtin::BuiltinDtd;
use pv_workload::corpus;
use pv_workload::mutate::Mutator;
use pv_xml::Document;

/// Worker counts swept by the parallel bench and table X7.
pub const PARALLEL_JOBS: [usize; 4] = [1, 2, 4, 8];

/// The per-node sharding workload: one large in-progress play document
/// (~10k target elements → ~24k δ tokens, 20% of the markup stripped).
pub fn parallel_doc() -> Document {
    let mut doc = corpus::play(10_000);
    Mutator::new(7).delete_random_markup(&mut doc, 2_000);
    doc
}

/// The per-document sharding workload: 24 play documents with sizes
/// jittered over `[400, 1200)` elements (irregular on purpose — equal
/// documents would never make a worker steal).
pub fn parallel_batch() -> Vec<Document> {
    corpus::batch(BuiltinDtd::Play, 24, 800).expect("play has a corpus builder")
}

/// Target element count of the memoization workloads.
pub const MEMO_NODES: usize = 10_000;

/// The repetitive memo workload: ~10k elements, `distinct` distinct
/// `(element, child-shape)` pairs (see `pv_workload::corpus::repetitive`).
/// `usize::MAX` gives the adversarial all-distinct corpus.
pub fn memo_doc(distinct: usize) -> Document {
    corpus::repetitive(MEMO_NODES, distinct)
}

/// Distinct-shape counts swept by the memo bench and table X8: hit-rate
/// regimes from ~100% (one shape) down to 0% (all distinct).
pub const MEMO_DISTINCT_SWEEP: [usize; 4] = [1, 16, 256, usize::MAX];

/// The streaming workload: `groups` repeated figure1-valid `<a>`
/// subtrees under one `<r>` — a wide document (depth-4 spine, ~93 bytes
/// per group) thousands of times larger than the streaming checker's
/// O(depth) resident state. Shared by the `stream` criterion bench and
/// table X10.
pub fn stream_doc(groups: usize) -> String {
    let mut s = String::with_capacity(groups * 96 + 8);
    s.push_str("<r>");
    for i in 0..groups {
        s.push_str("<a><b><d>lorem ipsum dolor sit amet ");
        s.push_str(&i.to_string());
        s.push_str("</d></b><c>consectetur</c><d>adipiscing elit</d></a>");
    }
    s.push_str("</r>");
    s
}

/// [`stream_doc`] with an undeclared `<zzz/>` planted ~1% of the way in:
/// the first-violation-latency workload (the streaming verdict is final
/// there; the tree pipeline still parses the remaining 99%).
pub fn stream_doc_poisoned(groups: usize) -> String {
    let mut s = stream_doc(groups);
    let marker = format!("<a><b><d>lorem ipsum dolor sit amet {}<", groups / 100);
    let at = s.find(&marker).expect("poison marker present");
    s.insert_str(at, "<zzz/>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = parallel_doc();
        let b = parallel_doc();
        assert_eq!(a.element_count(), b.element_count());
        let batch = parallel_batch();
        assert_eq!(batch.len(), 24);
        assert_eq!(
            batch.iter().map(|d| d.element_count()).sum::<usize>(),
            parallel_batch().iter().map(|d| d.element_count()).sum::<usize>(),
        );
    }
}
