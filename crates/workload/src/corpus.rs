//! Deterministic realistic documents for the built-in DTDs, sized by a
//! target element count — the benchmark suite's standard corpora.
//!
//! Unlike [`crate::docgen`], these builders produce documents with the
//! *shape* of their real-world counterparts (a play has acts with dozens
//! of speeches of several lines each; an XHTML page is a long flat body; a
//! TEI transcription nests divisions), which matters for the recognizer's
//! branching behaviour.

use pv_dtd::builtin::BuiltinDtd;
use pv_dtd::DtdAnalysis;
use pv_xml::Document;

/// A play (PLAY DTD) with enough acts/scenes/speeches to reach roughly
/// `target_elements` element nodes.
pub fn play(target_elements: usize) -> Document {
    let mut doc = Document::new("PLAY");
    let root = doc.root();
    let title = doc.append_element(root, "TITLE").unwrap();
    doc.append_text(title, "The Tragedy of Potential Validity").unwrap();
    let personae = doc.append_element(root, "PERSONAE").unwrap();
    let pt = doc.append_element(personae, "TITLE").unwrap();
    doc.append_text(pt, "Dramatis Personae").unwrap();
    for name in ["EDITOR", "PARSER"] {
        let p = doc.append_element(personae, "PERSONA").unwrap();
        doc.append_text(p, name).unwrap();
    }

    // ~13 elements per speech-pair scene block below.
    let mut produced = 8usize;
    while produced < target_elements {
        let act = doc.append_element(root, "ACT").unwrap();
        let at = doc.append_element(act, "TITLE").unwrap();
        doc.append_text(at, "ACT").unwrap();
        produced += 2;
        for scene_i in 0..3 {
            // An ACT requires at least one SCENE (play.dtd: `(TITLE, SCENE+)`),
            // so only break once the act is valid.
            if scene_i > 0 && produced >= target_elements {
                break;
            }
            let scene = doc.append_element(act, "SCENE").unwrap();
            let st = doc.append_element(scene, "TITLE").unwrap();
            doc.append_text(st, "SCENE I. A workshop.").unwrap();
            produced += 2;
            for s in 0..4 {
                let speech = doc.append_element(scene, "SPEECH").unwrap();
                let sp = doc.append_element(speech, "SPEAKER").unwrap();
                doc.append_text(sp, if s % 2 == 0 { "EDITOR" } else { "PARSER" }).unwrap();
                produced += 2;
                for l in 0..4 {
                    let line = doc.append_element(speech, "LINE").unwrap();
                    doc.append_text(line, match l {
                        0 => "Shall I compare thee to a well-formed tree?",
                        1 => "Thou art more lovely and more deterministic:",
                        2 => "Rough winds do shake the darling tags of May,",
                        _ => "And summer's lease hath all too short a date.",
                    })
                    .unwrap();
                    produced += 1;
                }
            }
        }
    }
    debug_assert!(doc.check_integrity().is_ok());
    doc
}

/// An XHTML page (XhtmlBasic DTD) with roughly `target_elements` elements.
pub fn xhtml(target_elements: usize) -> Document {
    let mut doc = Document::new("html");
    let root = doc.root();
    let head = doc.append_element(root, "head").unwrap();
    let title = doc.append_element(head, "title").unwrap();
    doc.append_text(title, "On Potential Validity").unwrap();
    let body = doc.append_element(root, "body").unwrap();
    let h1 = doc.append_element(body, "h1").unwrap();
    doc.append_text(h1, "Document-centric editing").unwrap();

    let mut produced = 5usize;
    let mut i = 0usize;
    while produced < target_elements {
        match i % 4 {
            0 | 1 => {
                let p = doc.append_element(body, "p").unwrap();
                doc.append_text(p, "A quick brown fox jumps over a ").unwrap();
                let b = doc.append_element(p, "b").unwrap();
                doc.append_text(b, "lazy").unwrap();
                let inner = doc.append_element(b, "i").unwrap();
                doc.append_text(inner, " and italic").unwrap();
                doc.append_text(p, " dog.").unwrap();
                produced += 3;
            }
            2 => {
                let ul = doc.append_element(body, "ul").unwrap();
                for item in ["insert", "delete", "update"] {
                    let li = doc.append_element(ul, "li").unwrap();
                    doc.append_text(li, item).unwrap();
                }
                produced += 4;
            }
            _ => {
                let pre = doc.append_element(body, "pre").unwrap();
                doc.append_text(pre, "<r><a>…</a></r>").unwrap();
                produced += 1;
            }
        }
        i += 1;
    }
    debug_assert!(doc.check_integrity().is_ok());
    doc
}

/// A TEI transcription (TeiLite DTD) with roughly `target_elements`
/// elements, nesting divisions two levels deep.
pub fn tei(target_elements: usize) -> Document {
    let mut doc = Document::new("TEI");
    let root = doc.root();
    let header = doc.append_element(root, "teiHeader").unwrap();
    let fd = doc.append_element(header, "fileDesc").unwrap();
    let ts = doc.append_element(fd, "titleStmt").unwrap();
    let t = doc.append_element(ts, "title").unwrap();
    doc.append_text(t, "Letters of a Markup Editor").unwrap();
    let text = doc.append_element(root, "text").unwrap();
    let body = doc.append_element(text, "body").unwrap();

    let mut produced = 7usize;
    while produced < target_elements {
        let div = doc.append_element(body, "div").unwrap();
        let head = doc.append_element(div, "head").unwrap();
        doc.append_text(head, "Chapter").unwrap();
        produced += 2;
        for _ in 0..3 {
            let sub = doc.append_element(div, "div").unwrap();
            produced += 1;
            for pi in 0..4 {
                let p = doc.append_element(sub, "p").unwrap();
                doc.append_text(p, "Call me ").unwrap();
                let name = doc.append_element(p, "name").unwrap();
                doc.append_text(name, "Ishmael").unwrap();
                doc.append_text(p, ". Some years ago — never mind how long — ").unwrap();
                if pi % 2 == 0 {
                    let hi = doc.append_element(p, "hi").unwrap();
                    doc.append_text(hi, "precisely").unwrap();
                    produced += 1;
                }
                doc.append_element(p, "lb").unwrap();
                produced += 3;
            }
        }
    }
    debug_assert!(doc.check_integrity().is_ok());
    doc
}

/// A scholarly article (DocbookArticle DTD) with roughly
/// `target_elements` elements: front matter, then `sect1` blocks mixing
/// paragraphs (with inline emphasis and footnotes), item lists, and one
/// `sect2` subsection each.
pub fn docbook_article(target_elements: usize) -> Document {
    let mut doc = Document::new("article");
    let root = doc.root();
    let title = doc.append_element(root, "title").unwrap();
    doc.append_text(title, "On the Potential Validity of Editorial Markup").unwrap();
    let info = doc.append_element(root, "articleinfo").unwrap();
    let author = doc.append_element(info, "author").unwrap();
    let first = doc.append_element(author, "firstname").unwrap();
    doc.append_text(first, "Ada").unwrap();
    let sur = doc.append_element(author, "surname").unwrap();
    doc.append_text(sur, "Lovelace").unwrap();
    let date = doc.append_element(info, "date").unwrap();
    doc.append_text(date, "2006-04-03").unwrap();
    let abs = doc.append_element(root, "abstract").unwrap();
    let abs_p = doc.append_element(abs, "para").unwrap();
    doc.append_text(abs_p, "We study in-progress documents.").unwrap();

    let mut produced = 9usize;
    let mut section = 0usize;
    while produced < target_elements {
        section += 1;
        let s1 = doc.append_element(root, "sect1").unwrap();
        let t = doc.append_element(s1, "title").unwrap();
        doc.append_text(t, "Section").unwrap();
        produced += 2;
        for pi in 0..3 {
            let p = doc.append_element(s1, "para").unwrap();
            doc.append_text(p, "A quick brown fox jumps over a ").unwrap();
            let em = doc.append_element(p, "emphasis").unwrap();
            doc.append_text(em, "lazy").unwrap();
            doc.append_text(p, " dog").unwrap();
            produced += 2;
            if pi == 1 {
                let fnote = doc.append_element(p, "footnote").unwrap();
                let fp = doc.append_element(fnote, "para").unwrap();
                doc.append_text(fp, "Not an actual dog.").unwrap();
                produced += 2;
            }
        }
        let list = doc.append_element(s1, "itemizedlist").unwrap();
        produced += 1;
        for item in ["insert", "delete", "update"] {
            let li = doc.append_element(list, "listitem").unwrap();
            let lp = doc.append_element(li, "para").unwrap();
            doc.append_text(lp, item).unwrap();
            produced += 2;
        }
        if section.is_multiple_of(2) {
            let s2 = doc.append_element(s1, "sect2").unwrap();
            let t2 = doc.append_element(s2, "title").unwrap();
            doc.append_text(t2, "Subsection").unwrap();
            let p2 = doc.append_element(s2, "para").unwrap();
            doc.append_text(p2, "Details follow.").unwrap();
            produced += 3;
        }
    }
    debug_assert!(doc.check_integrity().is_ok());
    doc
}

/// A performance text (TeiDrama DTD) with roughly `target_elements`
/// elements: a cast list up front, then acts (`div`) of speeches mixing
/// prose, verse lines, and stage directions.
pub fn tei_drama(target_elements: usize) -> Document {
    let mut doc = Document::new("TEI");
    let root = doc.root();
    let header = doc.append_element(root, "teiHeader").unwrap();
    let fd = doc.append_element(header, "fileDesc").unwrap();
    let ts = doc.append_element(fd, "titleStmt").unwrap();
    let t = doc.append_element(ts, "title").unwrap();
    doc.append_text(t, "The Marked-Up Tragedy").unwrap();
    let text = doc.append_element(root, "text").unwrap();
    let front = doc.append_element(text, "front").unwrap();
    let cast = doc.append_element(front, "castList").unwrap();
    for who in ["EDITOR", "PARSER"] {
        let item = doc.append_element(cast, "castItem").unwrap();
        let role = doc.append_element(item, "role").unwrap();
        doc.append_text(role, who).unwrap();
    }
    let body = doc.append_element(text, "body").unwrap();

    let mut produced = 11usize;
    while produced < target_elements {
        let div = doc.append_element(body, "div").unwrap();
        let head = doc.append_element(div, "head").unwrap();
        doc.append_text(head, "Act").unwrap();
        let opening = doc.append_element(div, "stage").unwrap();
        doc.append_text(opening, "Enter EDITOR, stage left.").unwrap();
        produced += 3;
        for s in 0..4 {
            let sp = doc.append_element(div, "sp").unwrap();
            let speaker = doc.append_element(sp, "speaker").unwrap();
            doc.append_text(speaker, if s % 2 == 0 { "EDITOR" } else { "PARSER" }).unwrap();
            produced += 2;
            if s % 2 == 0 {
                for l in 0..3 {
                    let line = doc.append_element(sp, "l").unwrap();
                    doc.append_text(line, match l {
                        0 => "Shall I compare thee to a well-formed tree?",
                        1 => "Thou art more lovely and more deterministic:",
                        _ => "Rough winds do shake the darling tags of May,",
                    })
                    .unwrap();
                    produced += 1;
                }
            } else {
                let p = doc.append_element(sp, "p").unwrap();
                doc.append_text(p, "Speak the speech, I pray you, with ").unwrap();
                let hi = doc.append_element(p, "hi").unwrap();
                doc.append_text(hi, "balanced tags").unwrap();
                doc.append_text(p, ".").unwrap();
                let stage = doc.append_element(sp, "stage").unwrap();
                doc.append_text(stage, "Gestures at the DOM.").unwrap();
                produced += 3;
            }
        }
    }
    debug_assert!(doc.check_integrity().is_ok());
    doc
}

/// Builds the standard corpus document for a built-in DTD, when one exists.
pub fn for_builtin(b: BuiltinDtd, target_elements: usize) -> Option<Document> {
    match b {
        BuiltinDtd::Play => Some(play(target_elements)),
        BuiltinDtd::XhtmlBasic => Some(xhtml(target_elements)),
        BuiltinDtd::TeiLite => Some(tei(target_elements)),
        BuiltinDtd::DocbookArticle => Some(docbook_article(target_elements)),
        BuiltinDtd::TeiDrama => Some(tei_drama(target_elements)),
        _ => None,
    }
}

/// A deterministic batch of `docs` corpus documents for `b` — the standard
/// many-document workload behind the `PvChecker::check_batch` benchmarks
/// and tests. Document `i` targets a size jittered over
/// `[target_elements/2, 3·target_elements/2)` by a fixed Weyl sequence, so
/// batches are irregular enough to exercise work stealing (equal-sized
/// documents would never leave a worker idle) while staying bit-identical
/// across runs and machines. Returns `None` for DTDs without a corpus
/// builder (see [`for_builtin`]).
pub fn batch(b: BuiltinDtd, docs: usize, target_elements: usize) -> Option<Vec<Document>> {
    let spread = target_elements.max(1);
    (0..docs)
        .map(|i| {
            // Low-discrepancy jitter: golden-ratio Weyl sequence on [0, 1).
            let phase = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
            let jitter = (phase as usize) % spread;
            for_builtin(b, target_elements / 2 + jitter)
        })
        .collect()
}

/// Number of leaf symbols under every `<s>` node of the [`repetitive`]
/// corpus (and the number of optional `t` slots in `s`'s content model).
pub const REPETITIVE_WIDTH: usize = 16;

/// The DTD behind [`repetitive`]. Each `<s>` node's children are leaves
/// that can only be absorbed by speculating an elided `t → u` chain per
/// symbol (`md(t, v) = md(t, x) = 2`), so an **uncached** ECPV run over an
/// `<s>` shape is deliberately expensive (nested-recognizer spawns), while
/// a shape-memo hit is one hash of [`REPETITIVE_WIDTH`] symbols — the
/// corpus family separates the two regimes cleanly.
const REPETITIVE_DTD: &str = "\
<!ELEMENT r (s*)>
<!ELEMENT s (t?, t?, t?, t?, t?, t?, t?, t?, t?, t?, t?, t?, t?, t?, t?, t?)>
<!ELEMENT t (u)>
<!ELEMENT u (v?, x?)>
<!ELEMENT v EMPTY>
<!ELEMENT x EMPTY>";

/// Compiled analysis of the [`repetitive`] corpus DTD (root `r`).
pub fn repetitive_analysis() -> DtdAnalysis {
    DtdAnalysis::parse(REPETITIVE_DTD, "r").expect("repetitive DTD is well-formed")
}

/// A deterministic shape-controlled corpus for the memoization benchmarks:
/// roughly `target_elements` elements under [`repetitive_analysis`],
/// organised as `<s>` blocks of [`REPETITIVE_WIDTH`] leaf children each.
///
/// Block `i` takes **shape code** `i % distinct_shapes`; bit `b` of the
/// code decides whether leaf `b` is `<v>` or `<x>`, so the corpus contains
/// exactly `min(distinct_shapes, blocks, 2^16)` distinct `(s, child
/// sequence)` shapes. Sweeping `distinct_shapes` from `1` to `usize::MAX`
/// moves a cold shape cache's hit rate from ~100% down to 0% (every block
/// distinct — the adversarial regime) on documents whose node count,
/// per-node work, and potential validity are otherwise identical.
///
/// Every generated document is potentially valid (each leaf sits in an
/// elided `t → u` chain; `s` has enough optional `t` slots for any
/// pattern) and the builder is allocation-deterministic: same arguments,
/// bit-identical document.
pub fn repetitive(target_elements: usize, distinct_shapes: usize) -> Document {
    let distinct = distinct_shapes.clamp(1, 1 << REPETITIVE_WIDTH);
    let blocks = std::cmp::max(1, target_elements.saturating_sub(1) / (REPETITIVE_WIDTH + 1));
    let mut doc = Document::new("r");
    let root = doc.root();
    for i in 0..blocks {
        let s = doc.append_element(root, "s").unwrap();
        let code = i % distinct;
        for bit in 0..REPETITIVE_WIDTH {
            let name = if (code >> bit) & 1 == 1 { "x" } else { "v" };
            doc.append_element(s, name).unwrap();
        }
    }
    debug_assert!(doc.check_integrity().is_ok());
    doc
}

/// The densely recursive adversarial DTD family behind the
/// recognizer-completeness suites: `depth` levels of `fanout` elements
/// each (`k = depth · fanout`), wired as per-column chains with a braided
/// interconnect — `x{l}_j → (x{l+1}_j | x{l+1}_{j+1 mod f})` — a
/// **recursive re-entry at the middle level** (`x0_j` as a third
/// alternative, making the family PV-strong recursive) and a mixed
/// bottom level `(#PCDATA | x0_j)*` whose star reaches the whole
/// alphabet.
///
/// The shape is engineered to stress the speculation agenda:
///
/// * `md(x{l}_j, σ) = depth − 1 − l` spreads the md spectrum, so agenda
///   ordering (not DTD declaration order) decides which chain opens
///   first;
/// * absorbing an explicit `x{m}` or a second sibling takes a chain of
///   elisions down to the bottom star — the committed-sub/budget-drain
///   class (gap a of the PR 4 completeness audit) reproduces on it under
///   the old scheduler once `depth · fanout ≥ 32` pushes the budget into
///   its scaled regime;
/// * the mid-level re-entry plus the choice-of-two interconnect creates
///   equality/elision branch points (gap b) at every level.
///
/// Chains are column-local (not a complete bipartite lattice), keeping
/// the per-symbol hypothesis count near-linear in `k` — the regime the
/// scaled budget covers; `tests/completeness.rs` asserts the certified
/// configurations are divergence-free against the exact Earley oracle,
/// and that on over-budget configurations (deep braids are exponential
/// in hypothesis count) every divergence is flagged by
/// `RecognizerStats::specs_denied`, never silent.
pub fn recursive_dtd_source(depth: usize, fanout: usize) -> String {
    let depth = depth.max(2);
    let fanout = fanout.max(1);
    let mut src = String::new();
    for l in 0..depth {
        for j in 0..fanout {
            let name = format!("x{l}_{j}");
            if l + 1 == depth {
                src.push_str(&format!("<!ELEMENT {name} (#PCDATA | x0_{j})*>\n"));
            } else {
                let mut alts: Vec<String> = vec![format!("x{}_{j}", l + 1)];
                let braid = format!("x{}_{}", l + 1, (j + 1) % fanout);
                if !alts.contains(&braid) {
                    alts.push(braid);
                }
                if l == depth / 2 {
                    alts.push(format!("x0_{j}"));
                }
                src.push_str(&format!("<!ELEMENT {name} ({})>\n", alts.join(" | ")));
            }
        }
    }
    src
}

/// Compiled analysis of [`recursive_dtd_source`]`(depth, fanout)`, rooted
/// at `x0_0`.
pub fn recursive_analysis(depth: usize, fanout: usize) -> DtdAnalysis {
    DtdAnalysis::parse(&recursive_dtd_source(depth, fanout), "x0_0")
        .expect("recursive family DTD is well-formed")
}

/// Deterministic stripped documents for the [`recursive_analysis`] family:
/// every document is potentially valid (verified against the Earley
/// oracle by `tests/completeness.rs`), but recognizing one forces elision
/// chains of up to `depth` levels. The set contains, for each level `l`:
/// a bare σ run under an explicit level-`l` element, explicit chains
/// broken at `l` (children that skip one level), sibling runs mixing σ
/// with explicit elements, and a recursive re-entry (`x0_0` under the
/// bottom level).
pub fn recursive(depth: usize, fanout: usize) -> Vec<Document> {
    let depth = depth.max(1);
    let fanout = fanout.max(1);
    let name = |l: usize, j: usize| format!("x{l}_{j}");
    let mut docs = Vec::new();
    // Bare text at the root: needs the full depth of elisions.
    let mut d = Document::new(&name(0, 0));
    d.append_text(d.root(), "t").unwrap();
    docs.push(d);
    for l in 1..depth {
        for j in 0..fanout.min(3) {
            // An explicit level-l element directly under the root (skips
            // l − 1 levels of markup), carrying bare text.
            let mut d = Document::new(&name(0, 0));
            let mid = d.append_element(d.root(), &name(l, j)).unwrap();
            d.append_text(mid, "t").unwrap();
            docs.push(d);
            // The same with a recursive re-entry next to the text.
            let mut d = Document::new(&name(0, 0));
            let mid = d.append_element(d.root(), &name(l, j)).unwrap();
            d.append_text(mid, "t").unwrap();
            d.append_element(mid, &name(0, 0)).unwrap();
            docs.push(d);
        }
    }
    // Sibling runs under the root: σ then explicit elements from two
    // different levels (only one child can be legal per choice parse, the
    // rest must be absorbed by recursive elision).
    if depth >= 2 {
        let mut d = Document::new(&name(0, 0));
        let root = d.root();
        d.append_text(root, "t").unwrap();
        d.append_element(root, &name(1, 0)).unwrap();
        d.append_element(root, &name(depth - 1, fanout.min(2) - 1)).unwrap();
        docs.push(d);
    }
    // A full explicit chain root → bottom, then text.
    let mut d = Document::new(&name(0, 0));
    let mut at = d.root();
    for l in 1..depth {
        at = d.append_element(at, &name(l, (l * 7) % fanout)).unwrap();
    }
    d.append_text(at, "t").unwrap();
    docs.push(d);
    for doc in &docs {
        debug_assert!(doc.check_integrity().is_ok());
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_grammar::validator::validate_document;

    #[test]
    fn corpora_are_valid() {
        for (b, doc) in [
            (BuiltinDtd::Play, play(500)),
            (BuiltinDtd::XhtmlBasic, xhtml(500)),
            (BuiltinDtd::TeiLite, tei(500)),
            (BuiltinDtd::DocbookArticle, docbook_article(500)),
            (BuiltinDtd::TeiDrama, tei_drama(500)),
        ] {
            let analysis = b.analysis();
            validate_document(&doc, &analysis.dtd, analysis.root)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        }
    }

    #[test]
    fn corpora_scale() {
        for target in [50usize, 500, 5000] {
            let doc = play(target);
            let count = doc.element_count();
            assert!(
                count >= target && count < target + 40,
                "target {target} produced {count}"
            );
        }
    }

    #[test]
    fn for_builtin_covers_realistic_dtds() {
        assert!(for_builtin(BuiltinDtd::Play, 100).is_some());
        assert!(for_builtin(BuiltinDtd::Figure1, 100).is_none());
    }

    #[test]
    fn repetitive_corpus_is_pv_deterministic_and_shape_controlled() {
        use pv_core::checker::PvChecker;
        let analysis = repetitive_analysis();
        let checker = PvChecker::new(&analysis);
        for distinct in [1usize, 7, 64, usize::MAX] {
            let doc = repetitive(2_000, distinct);
            let again = repetitive(2_000, distinct);
            assert_eq!(doc.to_xml(), again.to_xml(), "distinct={distinct}");
            let count = doc.element_count();
            assert!(
                (1_900..2_100).contains(&count),
                "distinct={distinct}: {count} elements"
            );
            assert!(
                checker.check_document(&doc).is_potentially_valid(),
                "distinct={distinct}"
            );
        }
        // Shape-count control: a cold cache sees exactly `distinct` s-shapes
        // (+1 for the root's own child sequence).
        let mut checker = PvChecker::new(&analysis);
        checker.set_memo_enabled(true);
        let doc = repetitive(2_000, 7);
        checker.check_document(&doc);
        let stats = checker.memo_stats().unwrap();
        assert_eq!(stats.entries, 8, "{stats:?}");
        // All-distinct: every block its own shape.
        let blocks = (2_000 - 1) / (REPETITIVE_WIDTH + 1);
        let checker2 = PvChecker::new(&analysis);
        checker2.check_document(&repetitive(2_000, usize::MAX));
        let stats2 = checker2.memo_stats().unwrap();
        assert_eq!(stats2.entries, blocks + 1, "{stats2:?}");
        assert_eq!(stats2.hits, 0, "adversarial corpus must never hit cold");
    }

    #[test]
    fn batch_is_deterministic_valid_and_jittered() {
        let docs = batch(BuiltinDtd::Play, 8, 200).unwrap();
        assert_eq!(docs.len(), 8);
        let again = batch(BuiltinDtd::Play, 8, 200).unwrap();
        let sizes: Vec<usize> = docs.iter().map(|d| d.element_count()).collect();
        assert_eq!(sizes, again.iter().map(|d| d.element_count()).collect::<Vec<_>>());
        // Jitter actually varies sizes within [target/2, 3*target/2).
        assert!(sizes.iter().any(|&s| s != sizes[0]), "{sizes:?}");
        assert!(sizes.iter().all(|s| (100..340).contains(s)), "{sizes:?}");
        // The jitter window is centred on the target: both halves occur
        // (bounds leave headroom for the generator's block overshoot).
        assert!(sizes.iter().any(|&s| s < 150), "{sizes:?}");
        assert!(sizes.iter().any(|&s| s >= 200), "{sizes:?}");
        let analysis = BuiltinDtd::Play.analysis();
        for d in &docs {
            validate_document(d, &analysis.dtd, analysis.root).unwrap();
        }
        assert!(batch(BuiltinDtd::Figure1, 3, 100).is_none());
    }
}
