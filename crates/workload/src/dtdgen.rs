//! Random DTD generation with a requested recursion class.
//!
//! Base construction uses forward references only (element `i` references
//! only elements `> i`), which makes every element productive by induction;
//! an explicit reachability pass then guarantees usability, so generated
//! DTDs always satisfy the paper's standing assumption (Section 3.3).
//! Recursion is injected afterwards:
//!
//! * **PV-weak**: a back-reference wrapped in a star (`(x)*` inside the
//!   model) — recursion only through a star-group;
//! * **PV-strong**: an optional back-reference in sequence position
//!   (`x?`) — a strong edge, since `?` sits outside any star.

use pv_dtd::{Cp, Dtd, DtdAnalysis, DtdClass, ElemId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`DtdGen`].
#[derive(Debug, Clone)]
pub struct DtdGenParams {
    /// Number of element types (≥ 2).
    pub elements: usize,
    /// Requested recursion class.
    pub class: DtdClass,
    /// Approximate max atoms per content model.
    pub max_model_atoms: usize,
    /// Probability that a leaf-ish element is mixed content.
    pub mixed_prob: f64,
}

impl Default for DtdGenParams {
    fn default() -> Self {
        DtdGenParams {
            elements: 8,
            class: DtdClass::NonRecursive,
            max_model_atoms: 5,
            mixed_prob: 0.3,
        }
    }
}

/// Deterministic random DTD generator.
pub struct DtdGen {
    rng: StdRng,
    params: DtdGenParams,
}

impl DtdGen {
    /// Creates a generator with a seed (same seed ⇒ same DTDs).
    pub fn new(seed: u64, params: DtdGenParams) -> Self {
        DtdGen { rng: StdRng::seed_from_u64(seed), params }
    }

    /// Generates one DTD with root `e0`, guaranteed usable and of the
    /// requested class.
    pub fn generate(&mut self) -> DtdAnalysis {
        // Rejection-sample until the class check passes; the construction
        // below almost always succeeds on the first try.
        for _ in 0..100 {
            let src = self.generate_source();
            if let Ok(analysis) = DtdAnalysis::parse(&src, "e0") {
                if analysis.rec.class == self.params.class {
                    return analysis;
                }
            }
        }
        panic!("DTD generation failed to converge for {:?}", self.params);
    }

    /// Generates raw DTD source (exposed for tests and debugging).
    pub fn generate_source(&mut self) -> String {
        let m = self.params.elements.max(2);
        let mut models: Vec<String> = Vec::with_capacity(m);

        for i in 0..m {
            let model = if i + 1 >= m {
                // Last element is always a leaf.
                self.leaf_model()
            } else if i + 2 >= m || self.rng.random_bool(0.25) {
                self.leaf_model()
            } else {
                self.children_model(i, m)
            };
            models.push(model);
        }

        // Reachability pass: every element j ≥ 1 must occur somewhere in a
        // model of an element < j. Append missing ones as optional tail
        // items of the root (viable & productive ⇒ usable).
        let mut referenced = vec![false; m];
        referenced[0] = true;
        #[allow(clippy::needless_range_loop)] // j is a name index, not a slice index
        for (i, model) in models.iter().enumerate() {
            for j in i + 1..m {
                if model.contains(&format!("e{j},"))
                    || model.contains(&format!("e{j})"))
                    || model.contains(&format!("e{j} "))
                    || model.contains(&format!("e{j}?"))
                    || model.contains(&format!("e{j}*"))
                    || model.contains(&format!("e{j}+"))
                    || model.contains(&format!("e{j}|"))
                {
                    referenced[j] = true;
                }
            }
        }
        // Give the root a starred tail so generated documents can scale to
        // any requested size (a root without repetition caps document
        // width at its model's length).
        let missing: Vec<usize> =
            (1..m).filter(|&j| !referenced[j]).collect();
        if !missing.is_empty() {
            let tail: Vec<String> = missing.iter().map(|j| format!("e{j}?")).collect();
            let root = &models[0];
            models[0] = match root.as_str() {
                "EMPTY" => format!("({})", tail.join(", ")),
                "ANY" => root.clone(), // ANY already reaches everything
                _ if root.starts_with("(#PCDATA") => {
                    // Mixed root: rebuild as mixed including the missing.
                    let mut members: Vec<String> =
                        missing.iter().map(|j| format!("e{j}")).collect();
                    members.insert(0, "#PCDATA".to_owned());
                    format!("({})*", members.join(" | "))
                }
                _ => format!("({}, {})", root, tail.join(", ")),
            };
        }

        {
            let root = &models[0];
            models[0] = if root == "EMPTY" || root.starts_with("(#PCDATA") || root == "ANY" {
                "(e1*)".to_owned()
            } else {
                format!("({}, e1*)", root)
            };
        }

        // Recursion injection.
        match self.params.class {
            DtdClass::NonRecursive => {}
            DtdClass::PvWeakRecursive => {
                // Back-reference inside a star on a non-root element.
                let i = self.rng.random_range(1..m);
                let back = self.rng.random_range(0..=i);
                let model = &models[i];
                models[i] = if model == "EMPTY" || model.starts_with("(#PCDATA") {
                    format!("(e{back}*)")
                } else if model == "ANY" {
                    model.clone()
                } else {
                    format!("({}, e{back}*)", model)
                };
            }
            DtdClass::PvStrongRecursive => {
                let i = self.rng.random_range(1..m);
                let back = self.rng.random_range(0..=i);
                let model = &models[i];
                models[i] = if model == "EMPTY" || model.starts_with("(#PCDATA") || model == "ANY"
                {
                    format!("(e{back}?)")
                } else {
                    format!("({}, e{back}?)", model)
                };
            }
        }

        let mut src = String::new();
        for (i, model) in models.iter().enumerate() {
            src.push_str(&format!("<!ELEMENT e{i} {model}>\n"));
        }
        src
    }

    fn leaf_model(&mut self) -> String {
        if self.rng.random_bool(self.params.mixed_prob) {
            "(#PCDATA)".to_owned()
        } else if self.rng.random_bool(0.5) {
            "EMPTY".to_owned()
        } else {
            "(#PCDATA)".to_owned()
        }
    }

    /// A random children model over elements `i+1 .. m`.
    fn children_model(&mut self, i: usize, m: usize) -> String {
        let atoms = self.rng.random_range(1..=self.params.max_model_atoms);
        let cp = self.random_cp(i + 1, m, atoms, 0);
        let rendered = render_cp(&cp);
        if rendered.starts_with('(') {
            rendered
        } else {
            format!("({rendered})")
        }
    }

    fn random_cp(&mut self, lo: usize, m: usize, budget: usize, depth: usize) -> CpT {
        if budget <= 1 || depth >= 3 {
            return self.random_atom(lo, m);
        }
        match self.rng.random_range(0..10) {
            0..=4 => {
                // Sequence.
                let parts = self.rng.random_range(2..=budget.min(4));
                let per = (budget / parts).max(1);
                CpT::Seq(
                    (0..parts).map(|_| self.random_cp(lo, m, per, depth + 1)).collect(),
                )
            }
            5..=7 => {
                let parts = self.rng.random_range(2..=budget.min(3));
                let per = (budget / parts).max(1);
                CpT::Choice(
                    (0..parts).map(|_| self.random_cp(lo, m, per, depth + 1)).collect(),
                )
            }
            8 => CpT::Star(Box::new(self.random_cp(lo, m, budget - 1, depth + 1))),
            _ => {
                let inner = self.random_atom(lo, m);
                match self.rng.random_range(0..3) {
                    0 => CpT::Opt(Box::new(inner)),
                    1 => CpT::Plus(Box::new(inner)),
                    _ => inner,
                }
            }
        }
    }

    fn random_atom(&mut self, lo: usize, m: usize) -> CpT {
        CpT::Name(self.rng.random_range(lo..m))
    }
}

/// A tiny textual content-particle tree (indices, not [`ElemId`]s — the DTD
/// does not exist yet while generating).
enum CpT {
    Name(usize),
    Seq(Vec<CpT>),
    Choice(Vec<CpT>),
    Opt(Box<CpT>),
    Star(Box<CpT>),
    Plus(Box<CpT>),
}

fn render_cp(cp: &CpT) -> String {
    match cp {
        CpT::Name(i) => format!("e{i}"),
        CpT::Seq(cs) => {
            format!("({})", cs.iter().map(render_cp).collect::<Vec<_>>().join(", "))
        }
        CpT::Choice(cs) => {
            format!("({})", cs.iter().map(render_cp).collect::<Vec<_>>().join(" | "))
        }
        CpT::Opt(c) => format!("{}?", atomish(c)),
        CpT::Star(c) => format!("{}*", atomish(c)),
        CpT::Plus(c) => format!("{}+", atomish(c)),
    }
}

fn atomish(cp: &CpT) -> String {
    let r = render_cp(cp);
    if r.starts_with('(') || !r.contains([' ', ',', '|']) {
        r
    } else {
        format!("({r})")
    }
}

/// Convenience: ensure an arbitrary DTD reference exists for doctests.
pub fn example_ids(dtd: &Dtd) -> Vec<ElemId> {
    dtd.ids().collect()
}

/// Re-export used by generator internals (documented for completeness).
pub type GeneratedCp = Cp;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_classes() {
        for class in
            [DtdClass::NonRecursive, DtdClass::PvWeakRecursive, DtdClass::PvStrongRecursive]
        {
            for seed in 0..20 {
                let mut g = DtdGen::new(seed, DtdGenParams { class, ..Default::default() });
                let a = g.generate();
                assert_eq!(a.rec.class, class, "seed {seed}");
                assert!(a.usability().unusable().is_empty(), "seed {seed}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = DtdGenParams::default();
        let s1 = DtdGen::new(42, p.clone()).generate_source();
        let s2 = DtdGen::new(42, p.clone()).generate_source();
        assert_eq!(s1, s2);
        let s3 = DtdGen::new(43, p).generate_source();
        assert_ne!(s1, s3);
    }

    #[test]
    fn size_scales_with_params() {
        let small = DtdGen::new(
            1,
            DtdGenParams { elements: 4, ..Default::default() },
        )
        .generate();
        let large = DtdGen::new(
            1,
            DtdGenParams { elements: 40, max_model_atoms: 8, ..Default::default() },
        )
        .generate();
        assert!(large.stats.m > small.stats.m);
        assert!(large.stats.k > small.stats.k);
    }

    #[test]
    fn all_elements_reachable() {
        for seed in 0..30 {
            let mut g = DtdGen::new(
                seed,
                DtdGenParams { elements: 12, ..Default::default() },
            );
            let a = g.generate();
            let root = a.root;
            for id in a.dtd.ids() {
                if id != root {
                    assert!(
                        a.reach.reaches(root, id),
                        "seed {seed}: {} unreachable\n{}",
                        a.name(id),
                        a.dtd
                    );
                }
            }
        }
    }
}
