//! # pv-workload — generators for potential-validity experiments
//!
//! The paper evaluates no human data; this crate supplies the synthetic
//! workloads that exercise the same code paths at controlled scale:
//!
//! * [`dtdgen`] — random DTDs with a requested size and recursion class
//!   (non-recursive / PV-weak / PV-strong), always usable by construction;
//! * [`docgen`] — random **valid** documents for any DTD via budgeted
//!   grammar walks (valid ⇒ potentially valid, the base of most property
//!   tests);
//! * [`mutate`] — mutation operators: tag-pair deletion (guaranteed
//!   PV-preserving, Theorem 2), sibling swaps and renames (potential-
//!   validity breakers for negative workloads);
//! * [`corpus`] — deterministic realistic documents for the built-in DTD
//!   corpus (Shakespeare-play, XHTML, TEI) with a target size in tokens;
//! * [`trace`] — editorial traces: op sequences that rebuild a valid
//!   document from less-marked-up states, replayable through `pv-editor`;
//! * [`faultnet`] — a fault-injecting TCP proxy (stalls, mid-frame cuts,
//!   trickled bytes, garbage prefixes, refused connections) for proving
//!   the service's connection governance under hostile clients;
//! * [`sweep`] — exhaustive bounded enumeration of tiny DTD × document
//!   spaces (every content-model assignment × every small tree), the
//!   substrate of the recognizer-completeness proof suites.

pub mod corpus;
pub mod docgen;
pub mod dtdgen;
pub mod faultnet;
pub mod mutate;
pub mod sweep;
pub mod trace;

pub use docgen::DocGen;
pub use dtdgen::{DtdGen, DtdGenParams};
pub use faultnet::{FaultMode, FaultProxy};
