//! Random **valid** document generation: budgeted walks of the content
//! grammar. Valid documents are the bedrock of the property-test suite
//! (valid ⇒ potentially valid; deletions of tag pairs preserve potential
//! validity, Theorem 2).
//!
//! The walk is guided by a per-element *minimal completion cost* (least
//! number of element nodes needed to finish validly), computed by fixpoint;
//! when the node budget runs low the walk always takes cheapest branches,
//! so generation terminates with a valid document of roughly the requested
//! size even for recursive DTDs.

use pv_dtd::{ContentSpec, Cp, Dtd, DtdAnalysis, ElemId};
use pv_xml::{Document, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const WORDS: &[&str] = &[
    "lorem", "ipsum", "dolor", "sit", "amet", "consectetur", "adipiscing", "elit", "sed", "do",
    "eiusmod", "tempor", "incididunt", "labore", "dolore", "magna", "aliqua",
];

/// Deterministic random generator of valid documents.
pub struct DocGen<'a> {
    analysis: &'a DtdAnalysis,
    rng: StdRng,
    /// min_cost[i]: minimal element-node count of a valid subtree rooted at
    /// element i (including itself). `usize::MAX/2` = unproductive.
    min_cost: Vec<usize>,
}

const INFINITY: usize = usize::MAX / 4;

impl<'a> DocGen<'a> {
    /// Creates a generator for the given compiled DTD.
    pub fn new(analysis: &'a DtdAnalysis, seed: u64) -> Self {
        let min_cost = compute_min_cost(&analysis.dtd);
        DocGen { analysis, rng: StdRng::seed_from_u64(seed), min_cost }
    }

    /// Generates a valid document with roughly `target_nodes` element
    /// nodes (hard lower bounds of the DTD may exceed it).
    pub fn generate(&mut self, target_nodes: usize) -> Document {
        let root = self.analysis.root;
        let mut doc = Document::new(self.analysis.name(root));
        let mut budget = target_nodes.saturating_sub(1) as isize;
        let root_node = doc.root();
        self.fill(&mut doc, root_node, root, &mut budget, 0);
        debug_assert!(doc.check_integrity().is_ok());
        doc
    }

    /// Expands `node` (an element of type `elem`) with valid content.
    fn fill(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        elem: ElemId,
        budget: &mut isize,
        depth: usize,
    ) {
        // Clone the spec to appease borrows; content models are small.
        let spec = self.analysis.dtd.element(elem).content.clone();
        match spec {
            ContentSpec::Empty => {}
            ContentSpec::PcdataOnly => {
                if self.rng.random_bool(0.8) {
                    let text = self.words(1..4);
                    doc.append_text(node, &text).unwrap();
                }
            }
            ContentSpec::Any | ContentSpec::Mixed(_) => {
                let members: Vec<ElemId> = match &spec {
                    ContentSpec::Mixed(ids) => ids.clone(),
                    _ => self.analysis.dtd.ids().collect(),
                };
                let n = if *budget > 0 && depth < 24 { self.rng.random_range(0..4) } else { 0 };
                for i in 0..n {
                    if i % 2 == 0 || members.is_empty() {
                        let text = self.words(1..3);
                        doc.append_text(node, &text).unwrap();
                    } else {
                        let pick = members[self.rng.random_range(0..members.len())];
                        if self.min_cost[pick.index()] < INFINITY {
                            self.child(doc, node, pick, budget, depth);
                        }
                    }
                }
            }
            ContentSpec::Children(cp) => {
                let mut seq = Vec::new();
                self.sample_cp(&cp, budget, depth, &mut seq);
                for e in seq {
                    self.child(doc, node, e, budget, depth);
                }
            }
        }
    }

    fn child(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        elem: ElemId,
        budget: &mut isize,
        depth: usize,
    ) {
        *budget -= 1;
        let id = doc.append_element(parent, self.analysis.name(elem)).unwrap();
        self.fill(doc, id, elem, budget, depth + 1);
    }

    /// Samples a concrete child-element sequence matching `cp`.
    fn sample_cp(&mut self, cp: &Cp, budget: &mut isize, depth: usize, out: &mut Vec<ElemId>) {
        let constrained = *budget <= 0 || depth >= 24;
        match cp {
            Cp::Name(id) => out.push(*id),
            Cp::Seq(cs) => {
                for c in cs {
                    self.sample_cp(c, budget, depth, out);
                }
            }
            Cp::Choice(cs) => {
                let pick = if constrained {
                    // Cheapest branch.
                    cs.iter()
                        .min_by_key(|c| self.cp_cost(c))
                        .expect("non-empty choice")
                } else {
                    &cs[self.rng.random_range(0..cs.len())]
                };
                self.sample_cp(pick, budget, depth, out);
            }
            Cp::Opt(c) => {
                if !constrained && self.rng.random_bool(0.6) {
                    self.sample_cp(c, budget, depth, out);
                }
            }
            Cp::Star(c) => {
                let n = self.rep_count(0, constrained, *budget, self.cp_cost(c));
                for _ in 0..n {
                    self.sample_cp(c, budget, depth, out);
                }
            }
            Cp::Plus(c) => {
                let n = self.rep_count(1, constrained, *budget, self.cp_cost(c));
                for _ in 0..n {
                    self.sample_cp(c, budget, depth, out);
                }
            }
        }
    }

    /// Budget-aware repetition count for starred/plussed particles: spend
    /// a share of the remaining budget, capped to keep single nodes from
    /// exploding (overshoot is bounded by one sampling level).
    fn rep_count(&mut self, min: usize, constrained: bool, budget: isize, item_cost: usize) -> usize {
        if constrained {
            return min;
        }
        let affordable = (budget.max(0) as usize) / item_cost.max(1);
        let cap = affordable.clamp(min, 64);
        if cap <= min {
            return min;
        }
        self.rng.random_range(min..=cap)
    }

    /// Minimal element-node cost of one expansion of `cp`.
    fn cp_cost(&self, cp: &Cp) -> usize {
        cp_cost(cp, &self.min_cost)
    }

    fn words(&mut self, range: std::ops::Range<usize>) -> String {
        let n = self.rng.random_range(range);
        let mut s = String::new();
        for i in 0..n.max(1) {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(WORDS[self.rng.random_range(0..WORDS.len())]);
        }
        s
    }
}

/// Fixpoint: minimal valid subtree size (in element nodes) per element.
fn compute_min_cost(dtd: &Dtd) -> Vec<usize> {
    let mut cost = vec![INFINITY; dtd.len()];
    loop {
        let mut changed = false;
        for (id, decl) in dtd.iter() {
            let c = match &decl.content {
                ContentSpec::Empty
                | ContentSpec::Any
                | ContentSpec::PcdataOnly
                | ContentSpec::Mixed(_) => 1,
                ContentSpec::Children(cp) => 1usize.saturating_add(cp_cost(cp, &cost)),
            };
            if c < cost[id.index()] {
                cost[id.index()] = c;
                changed = true;
            }
        }
        if !changed {
            return cost;
        }
    }
}

fn cp_cost(cp: &Cp, elem_cost: &[usize]) -> usize {
    match cp {
        Cp::Name(id) => elem_cost[id.index()],
        Cp::Seq(cs) => cs.iter().map(|c| cp_cost(c, elem_cost)).fold(0usize, |a, b| {
            a.saturating_add(b)
        }),
        Cp::Choice(cs) => {
            cs.iter().map(|c| cp_cost(c, elem_cost)).min().unwrap_or(0)
        }
        Cp::Opt(_) | Cp::Star(_) => 0,
        Cp::Plus(c) => cp_cost(c, elem_cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtdgen::{DtdGen, DtdGenParams};
    use pv_dtd::builtin::BuiltinDtd;
    use pv_dtd::DtdClass;
    use pv_grammar::validator::validate_document;

    #[test]
    fn generated_documents_are_valid_for_builtins() {
        for b in BuiltinDtd::ALL {
            let analysis = b.analysis();
            let mut g = DocGen::new(&analysis, 7);
            for target in [1usize, 10, 100] {
                let doc = g.generate(target);
                validate_document(&doc, &analysis.dtd, analysis.root).unwrap_or_else(|e| {
                    panic!("{} target {target}: {e}\n{}", b.name(), doc.to_xml())
                });
            }
        }
    }

    #[test]
    fn generated_documents_are_valid_for_random_dtds() {
        for class in
            [DtdClass::NonRecursive, DtdClass::PvWeakRecursive, DtdClass::PvStrongRecursive]
        {
            for seed in 0..10 {
                let analysis =
                    DtdGen::new(seed, DtdGenParams { class, ..Default::default() }).generate();
                let mut g = DocGen::new(&analysis, seed);
                let doc = g.generate(50);
                validate_document(&doc, &analysis.dtd, analysis.root).unwrap_or_else(|e| {
                    panic!("class {class:?} seed {seed}: {e}\n{}\n{}", analysis.dtd, doc.to_xml())
                });
            }
        }
    }

    #[test]
    fn size_tracks_target() {
        let analysis = BuiltinDtd::Play.analysis();
        let mut g = DocGen::new(&analysis, 3);
        let small = g.generate(10);
        let large = g.generate(2000);
        assert!(large.element_count() > small.element_count() * 5);
        assert!(large.element_count() >= 1000, "{}", large.element_count());
    }

    #[test]
    fn deterministic_per_seed() {
        let analysis = BuiltinDtd::TeiLite.analysis();
        let d1 = DocGen::new(&analysis, 11).generate(60);
        let d2 = DocGen::new(&analysis, 11).generate(60);
        assert_eq!(d1.to_xml(), d2.to_xml());
    }

    #[test]
    fn recursive_dtds_terminate() {
        // T1/T2/dissertation have unbounded valid depth; generation must
        // still terminate quickly.
        for b in [BuiltinDtd::T1, BuiltinDtd::T2, BuiltinDtd::Dissertation] {
            let analysis = b.analysis();
            let mut g = DocGen::new(&analysis, 5);
            let doc = g.generate(200);
            validate_document(&doc, &analysis.dtd, analysis.root).unwrap();
            assert!(doc.document_depth() < 100);
        }
    }

    #[test]
    fn min_cost_reflects_structure() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let costs = compute_min_cost(&analysis.dtd);
        let id = |n: &str| analysis.id(n).unwrap().index();
        assert_eq!(costs[id("e")], 1);
        assert_eq!(costs[id("c")], 1);
        assert_eq!(costs[id("d")], 1);
        assert_eq!(costs[id("f")], 3); // f + c + e
        assert_eq!(costs[id("a")], 3); // a + c + d (b? skipped)
        assert_eq!(costs[id("r")], 4); // r + a-subtree
    }
}
