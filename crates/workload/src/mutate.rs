//! Mutation operators over documents.
//!
//! * [`Mutator::delete_random_markup`] — removes random tag pairs
//!   ([`pv_xml::Document::unwrap_element`]). By **Theorem 2** this always
//!   preserves potential validity, so applying it to a valid document
//!   yields guaranteed-PV (usually invalid) workloads — the exact shape of
//!   an in-progress document-centric encoding.
//! * [`Mutator::swap_random_siblings`] / [`Mutator::rename_random_element`] — perturbations
//!   that frequently break potential validity, for negative workloads;
//!   the caller labels results with an oracle.

use pv_dtd::Dtd;
use pv_xml::{Document, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic mutator.
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    /// Creates a mutator from a seed.
    pub fn new(seed: u64) -> Self {
        Mutator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Unwraps up to `count` random non-root elements (markup deletion,
    /// PV-preserving by Theorem 2). Returns how many were removed.
    pub fn delete_random_markup(&mut self, doc: &mut Document, count: usize) -> usize {
        let mut removed = 0;
        for _ in 0..count {
            let candidates: Vec<NodeId> =
                doc.elements().filter(|&n| n != doc.root()).collect();
            if candidates.is_empty() {
                break;
            }
            let pick = candidates[self.rng.random_range(0..candidates.len())];
            doc.unwrap_element(pick).expect("unwrap of live non-root element");
            removed += 1;
        }
        removed
    }

    /// Swaps two random adjacent element siblings somewhere in the
    /// document. Returns `true` if a swap happened.
    pub fn swap_random_siblings(&mut self, doc: &mut Document) -> bool {
        let parents: Vec<NodeId> = doc
            .elements()
            .filter(|&n| {
                let kids = doc.children(n);
                kids.iter().filter(|&&c| doc.node(c).kind.is_element()).count() >= 2
            })
            .collect();
        if parents.is_empty() {
            return false;
        }
        let parent = parents[self.rng.random_range(0..parents.len())];
        let elem_positions: Vec<usize> = doc
            .children(parent)
            .iter()
            .enumerate()
            .filter(|(_, &c)| doc.node(c).kind.is_element())
            .map(|(i, _)| i)
            .collect();
        let which = self.rng.random_range(0..elem_positions.len() - 1);
        let (i, j) = (elem_positions[which], elem_positions[which + 1]);
        // Swap by rebuilding the child vec through wrap/unwrap-free surgery:
        // pv-xml keeps children public only through ops, so emulate with
        // wrap+unwrap… simpler: use the dedicated test-support method below.
        swap_children(doc, parent, i, j);
        true
    }

    /// Renames one random non-root element to another declared name.
    /// Returns the renamed node, if any.
    pub fn rename_random_element(&mut self, doc: &mut Document, dtd: &Dtd) -> Option<NodeId> {
        let candidates: Vec<NodeId> = doc.elements().filter(|&n| n != doc.root()).collect();
        if candidates.is_empty() || dtd.is_empty() {
            return None;
        }
        let pick = candidates[self.rng.random_range(0..candidates.len())];
        let new_id = self.rng.random_range(0..dtd.len());
        let new_name = dtd.name(pv_dtd::ElemId(new_id as u32)).to_owned();
        doc.rename_element(pick, &new_name).ok()?;
        Some(pick)
    }
}

fn swap_children(doc: &mut Document, parent: NodeId, i: usize, j: usize) {
    assert!(i < j);
    let kids: Vec<NodeId> = doc.children(parent).to_vec();
    doc.swap_siblings(parent, kids[i], kids[j]).expect("valid sibling swap");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgen::DocGen;
    use pv_dtd::builtin::BuiltinDtd;

    #[test]
    fn delete_markup_reduces_elements() {
        let analysis = BuiltinDtd::Play.analysis();
        let mut doc = DocGen::new(&analysis, 1).generate(100);
        let before = doc.element_count();
        let removed = Mutator::new(9).delete_random_markup(&mut doc, 20);
        assert_eq!(removed, 20);
        assert_eq!(doc.element_count(), before - 20);
        doc.check_integrity().unwrap();
    }

    #[test]
    fn delete_markup_preserves_content() {
        let analysis = BuiltinDtd::TeiLite.analysis();
        let mut doc = DocGen::new(&analysis, 2).generate(80);
        let content = doc.content(doc.root());
        Mutator::new(1).delete_random_markup(&mut doc, 15);
        assert_eq!(doc.content(doc.root()), content, "Theorem 2 setting: text untouched");
    }

    #[test]
    fn swap_changes_order() {
        let mut doc = pv_xml::parse("<r><a/><b/></r>").unwrap();
        let r = doc.root();
        let before: Vec<NodeId> = doc.children(r).to_vec();
        assert!(Mutator::new(3).swap_random_siblings(&mut doc));
        let after: Vec<NodeId> = doc.children(r).to_vec();
        assert_eq!(before[0], after[1]);
        assert_eq!(before[1], after[0]);
        doc.check_integrity().unwrap();
    }

    #[test]
    fn swap_on_flat_document_is_noop() {
        let mut doc = pv_xml::parse("<r><a/></r>").unwrap();
        assert!(!Mutator::new(3).swap_random_siblings(&mut doc));
    }

    #[test]
    fn rename_uses_declared_names() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let mut doc = pv_xml::parse("<r><a><b/><c/><d/></a></r>").unwrap();
        let node = Mutator::new(5)
            .rename_random_element(&mut doc, &analysis.dtd)
            .expect("candidates exist");
        let name = doc.name(node).unwrap();
        assert!(analysis.dtd.id(name).is_some());
    }
}
