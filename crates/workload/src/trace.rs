//! Editorial traces: replayable operation sequences that rebuild a valid
//! document from a less-marked-up (but always potentially valid) state —
//! the paper's motivating workflow, synthesized.
//!
//! Construction inverts Theorem 2: starting from a valid document, unwrap
//! `k` random elements (each deletion is PV-preserving, so *every prefix*
//! of the inverse re-wrap trace is potentially valid); the trace is the
//! sequence of wrap operations restoring the original. Replaying it through
//! `pv-editor` exercises exactly the incremental markup-insertion checks.

use pv_xml::{Document, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One replayable editing step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Wrap children `range` of the element found at `path` in a new
    /// element `name`. Paths are child-index sequences from the root,
    /// counting only live children at replay time.
    WrapChildren {
        /// Path from the root (child indices).
        path: Vec<usize>,
        /// Child range to wrap.
        range: std::ops::Range<usize>,
        /// New element name.
        name: String,
    },
}

/// A trace plus its starting document.
#[derive(Debug, Clone)]
pub struct EditorialTrace {
    /// The starting (stripped, potentially valid) document.
    pub start: Document,
    /// Operations restoring full markup.
    pub ops: Vec<TraceOp>,
}

/// Resolves a child-index path to a node.
pub fn resolve_path(doc: &Document, path: &[usize]) -> Option<NodeId> {
    let mut cur = doc.root();
    for &i in path {
        cur = *doc.children(cur).get(i)?;
    }
    Some(cur)
}

/// Computes the child-index path of `node`.
fn path_of(doc: &Document, node: NodeId) -> Vec<usize> {
    let mut path = Vec::new();
    let mut cur = node;
    while let Some(parent) = doc.parent(cur) {
        path.push(doc.child_index(cur).expect("attached child"));
        cur = parent;
    }
    path.reverse();
    path
}

/// Builds a trace by stripping `strip` random elements from `valid_doc`.
///
/// The returned ops, applied in order to `start`, reproduce a document
/// token-equivalent to `valid_doc`; every intermediate state is
/// potentially valid (it is an intermediate extension of `start` toward
/// `valid_doc`).
pub fn strip_and_trace(valid_doc: &Document, strip: usize, seed: u64) -> EditorialTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut doc = valid_doc.clone();
    // Record inverse ops as we unwrap; replaying them in reverse restores.
    let mut inverse: Vec<TraceOp> = Vec::new();
    for _ in 0..strip {
        let candidates: Vec<NodeId> = doc.elements().filter(|&n| n != doc.root()).collect();
        if candidates.is_empty() {
            break;
        }
        let pick = candidates[rng.random_range(0..candidates.len())];
        let parent = doc.parent(pick).expect("non-root");
        let idx = doc.child_index(pick).expect("attached");
        let child_count = doc.children(pick).len();
        let name = doc.name(pick).expect("element").to_owned();
        let parent_path = path_of(&doc, parent);
        doc.unwrap_element(pick).expect("unwrap non-root");
        inverse.push(TraceOp::WrapChildren {
            path: parent_path,
            range: idx..idx + child_count,
            name,
        });
    }
    inverse.reverse();
    EditorialTrace { start: doc, ops: inverse }
}

/// Applies a trace without any checking (the checked replay lives in
/// `pv-editor`); returns the final document.
pub fn replay_unchecked(trace: &EditorialTrace) -> Document {
    let mut doc = trace.start.clone();
    for op in &trace.ops {
        match op {
            TraceOp::WrapChildren { path, range, name } => {
                let parent = resolve_path(&doc, path).expect("trace path resolves");
                doc.wrap_children(parent, range.clone(), name).expect("trace wrap applies");
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::docgen::DocGen;
    use pv_core::checker::PvChecker;
    use pv_dtd::builtin::BuiltinDtd;
    use pv_grammar::validator::validate_document;

    #[test]
    fn replay_restores_structure() {
        let analysis = BuiltinDtd::TeiLite.analysis();
        let doc = DocGen::new(&analysis, 4).generate(80);
        let trace = strip_and_trace(&doc, 25, 7);
        let restored = replay_unchecked(&trace);
        assert_eq!(restored.to_xml(), doc.to_xml());
    }

    #[test]
    fn start_document_is_potentially_valid() {
        let analysis = BuiltinDtd::Play.analysis();
        let doc = corpus::play(200);
        let trace = strip_and_trace(&doc, 60, 3);
        // The stripped start is usually invalid…
        let strictly_valid = validate_document(&trace.start, &analysis.dtd, analysis.root).is_ok();
        let _ = strictly_valid; // (may or may not hold; PV must)
        // …but always potentially valid (Theorem 2).
        let checker = PvChecker::new(&analysis);
        assert!(checker.check_document(&trace.start).is_potentially_valid());
    }

    #[test]
    fn every_prefix_is_potentially_valid() {
        let analysis = BuiltinDtd::XhtmlBasic.analysis();
        let doc = corpus::xhtml(60);
        let trace = strip_and_trace(&doc, 20, 11);
        let checker = PvChecker::new(&analysis);
        let mut cur = trace.start.clone();
        assert!(checker.check_document(&cur).is_potentially_valid());
        for op in &trace.ops {
            match op {
                TraceOp::WrapChildren { path, range, name } => {
                    let parent = resolve_path(&cur, path).unwrap();
                    cur.wrap_children(parent, range.clone(), name).unwrap();
                }
            }
            assert!(checker.check_document(&cur).is_potentially_valid());
        }
        // Final state is fully valid again.
        validate_document(&cur, &analysis.dtd, analysis.root).unwrap();
    }

    #[test]
    fn strip_zero_is_identity() {
        let analysis = BuiltinDtd::Figure1.analysis();
        let doc = DocGen::new(&analysis, 1).generate(20);
        let trace = strip_and_trace(&doc, 0, 0);
        assert!(trace.ops.is_empty());
        assert_eq!(trace.start.to_xml(), doc.to_xml());
    }

    #[test]
    fn path_resolution_roundtrips() {
        let doc = pv_xml::parse("<r><a><b/><c/></a><d/></r>").unwrap();
        let a = doc.children(doc.root())[0];
        let c = doc.children(a)[1];
        assert_eq!(path_of(&doc, c), vec![0, 1]);
        assert_eq!(resolve_path(&doc, &[0, 1]), Some(c));
        assert_eq!(resolve_path(&doc, &[5]), None);
    }
}
