//! # faultnet — a fault-injecting TCP proxy for service hardening tests
//!
//! [`FaultProxy`] sits between a `pv-service` client and server and
//! degrades the client→server byte stream on purpose: refused
//! connections, mid-frame cuts, long stalls, byte-trickling, and
//! garbage prefixes. The server→client direction is always a faithful
//! copy — the tests assert on what the *server* does under client
//! misbehaviour, so only the client side lies.
//!
//! The proxy is TCP-only (`127.0.0.1:0`) and deliberately simple:
//! thread-per-connection pumps with short read timeouts so `stop` and
//! [`FaultProxy::sever_all`] take effect promptly. The active
//! [`FaultMode`] is sampled once per connection at accept time, so a
//! `set_mode` call affects the next connection, never a pump mid-copy —
//! that keeps every scenario deterministic.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// What the proxy does to the client→server stream of one connection.
#[derive(Debug, Clone)]
pub enum FaultMode {
    /// Faithful copy (control runs).
    Forward,
    /// Drop the client connection immediately, before any upstream
    /// connect — models a dead backend.
    Refuse,
    /// Forward exactly `n` client bytes, then sever both directions —
    /// models a mid-frame disconnect.
    CutAfter(usize),
    /// Forward `bytes` client bytes, then stop forwarding (the
    /// connection stays open, silent) — models a stalled sender. The
    /// server's read deadline, not the proxy, decides what happens next.
    StallAfter {
        /// Bytes forwarded before the stall.
        bytes: usize,
    },
    /// Forward in `chunk`-byte pieces with `pause` between them —
    /// models a slow sender that never quite goes idle.
    Trickle {
        /// Bytes per piece.
        chunk: usize,
        /// Gap between pieces.
        pause: Duration,
    },
    /// Inject these bytes into the server first, then forward the real
    /// stream — models a confused or malicious client speaking garbage.
    GarbagePrefix(Vec<u8>),
}

struct Shared {
    mode: Mutex<FaultMode>,
    stop: AtomicBool,
    accepted: AtomicU64,
    /// Clones of both sides of every live connection, so `sever_all`
    /// can cut them without cooperation from the pump threads.
    conns: Mutex<Vec<TcpStream>>,
}

/// A fault-injecting TCP proxy in front of one upstream address.
pub struct FaultProxy {
    addr: String,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream` (a `host:port` string), initially in
    /// [`FaultMode::Forward`].
    pub fn spawn(upstream: &str) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            mode: Mutex::new(FaultMode::Forward),
            stop: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let upstream = upstream.to_owned();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &upstream, &shared))
        };
        Ok(FaultProxy { addr, shared, acceptor: Some(acceptor) })
    }

    /// The proxy's own listen address (`host:port`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sets the fault applied to connections accepted from now on.
    pub fn set_mode(&self, mode: FaultMode) {
        *self.shared.mode.lock().unwrap() = mode;
    }

    /// How many connections the proxy has accepted (including refused
    /// ones).
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Severs every live proxied connection in both directions. With
    /// [`FaultMode::Refuse`] set first, this turns a healthy backend
    /// into a dead one mid-batch.
    pub fn sever_all(&self) {
        let mut conns = self.shared.conns.lock().unwrap();
        for s in conns.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.sever_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, upstream: &str, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => break,
        };
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let mode = shared.mode.lock().unwrap().clone();
        if matches!(mode, FaultMode::Refuse) {
            drop(client);
            continue;
        }
        let server = match TcpStream::connect(upstream) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        {
            let mut conns = shared.conns.lock().unwrap();
            if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                conns.push(c);
                conns.push(s);
            }
        }
        // client→server carries the fault; server→client is faithful.
        let up = {
            let (from, to) = match (client.try_clone(), server.try_clone()) {
                (Ok(f), Ok(t)) => (f, t),
                _ => continue,
            };
            let shared = Arc::clone(shared);
            thread::spawn(move || pump(from, to, mode, &shared))
        };
        {
            let shared = Arc::clone(shared);
            thread::spawn(move || {
                pump(server, client, FaultMode::Forward, &shared);
                let _ = up.join();
            });
        }
    }
}

/// Copies `from` into `to` under `mode` until EOF, an error, or `stop`.
/// Severs both ends on exit so the peer pump unblocks too.
fn pump(mut from: TcpStream, mut to: TcpStream, mode: FaultMode, shared: &Shared) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut forwarded = 0usize;
    if let FaultMode::GarbagePrefix(garbage) = &mode {
        if to.write_all(garbage).is_err() {
            return;
        }
    }
    let mut buf = [0u8; 4096];
    'copy: while !shared.stop.load(Ordering::Acquire) {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        let mut out: &[u8] = &buf[..n];
        match &mode {
            FaultMode::Forward | FaultMode::GarbagePrefix(_) | FaultMode::Refuse => {}
            FaultMode::CutAfter(cap) => {
                let room = cap.saturating_sub(forwarded);
                if room < out.len() {
                    let _ = to.write_all(&out[..room]);
                    break; // sever below
                }
            }
            FaultMode::StallAfter { bytes } => {
                let room = bytes.saturating_sub(forwarded);
                if room < out.len() {
                    let _ = to.write_all(&out[..room]);
                    // Stay connected but silent; keep draining the
                    // client so its writes don't block, until stop.
                    loop {
                        if shared.stop.load(Ordering::Acquire) {
                            break 'copy;
                        }
                        match from.read(&mut buf) {
                            Ok(0) | Err(_) => {}
                            Ok(_) => continue,
                        }
                        thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            FaultMode::Trickle { chunk, pause } => {
                let step = (*chunk).max(1);
                while !out.is_empty() {
                    let k = step.min(out.len());
                    if to.write_all(&out[..k]).is_err() {
                        break 'copy;
                    }
                    out = &out[k..];
                    forwarded += k;
                    if !out.is_empty() {
                        thread::sleep(*pause);
                    }
                }
                continue;
            }
        }
        if to.write_all(out).is_err() {
            break;
        }
        forwarded += out.len();
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A one-connection echo server for exercising the proxy alone.
    fn echo_upstream() -> (String, thread::JoinHandle<()>) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        let h = thread::spawn(move || {
            // One connection is all the tests need.
            if let Ok((mut s, _)) = l.accept() {
                let mut buf = [0u8; 1024];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, h)
    }

    #[test]
    fn forward_mode_is_transparent() {
        let (upstream, server) = echo_upstream();
        let proxy = FaultProxy::spawn(&upstream).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"hello\n").unwrap();
        let mut line = String::new();
        BufReader::new(c.try_clone().unwrap()).read_line(&mut line).unwrap();
        assert_eq!(line, "hello\n");
        assert_eq!(proxy.accepted(), 1);
        drop(c);
        drop(proxy);
        server.join().unwrap();
    }

    #[test]
    fn refuse_mode_drops_connections() {
        let (upstream, _server) = echo_upstream();
        let proxy = FaultProxy::spawn(&upstream).unwrap();
        proxy.set_mode(FaultMode::Refuse);
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        // The accept succeeds (the proxy is listening) but the far side
        // closes without echoing anything.
        c.write_all(b"hello\n").ok();
        let mut buf = Vec::new();
        let n = c.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "refused connection must carry no data");
    }

    #[test]
    fn cut_after_severs_mid_stream() {
        let (upstream, _server) = echo_upstream();
        let proxy = FaultProxy::spawn(&upstream).unwrap();
        proxy.set_mode(FaultMode::CutAfter(4));
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"abcdefgh\n").unwrap();
        let mut buf = Vec::new();
        let got = c.read_to_end(&mut buf).unwrap_or(0);
        // At most the 4 forwarded bytes ever echo back.
        assert!(got <= 4, "got {got} bytes past the cut");
    }
}
