//! Exhaustive bounded enumeration of tiny DTD/document spaces for the
//! recognizer-completeness sweeps.
//!
//! Randomized differential testing ([`crate::dtdgen`] + [`crate::docgen`] +
//! [`crate::mutate`]) samples big spaces thinly; the completeness proof
//! wants the opposite regime — **every** DTD over a couple of element
//! names crossed with **every** document up to a bounded node count, so a
//! divergence class cannot hide between samples. The spaces are tiny
//! enough to close out exactly:
//!
//! * [`enumerate_dtds`] — the cartesian product of a curated content-model
//!   catalogue over `k` element names (every element gets every model),
//!   covering EMPTY/ANY/PCDATA, sequences, choices, star groups, mixed
//!   content, optionality, and the self/mutual recursion shapes (the T1/T2
//!   regimes of the paper) that drive elision speculation;
//! * [`enumerate_documents`] — every ordered labeled tree over the same
//!   `k` names plus σ text runs, up to a total node budget, rooted at the
//!   first name (the designated root of every enumerated DTD).
//!
//! Sizes stay deliberately small (see the table in [`enumerate_documents`])
//! — the suites in `tests/completeness.rs` pick bounds so the default run
//! is a few seconds and the nightly sweep can raise them via env knobs.

use pv_dtd::DtdAnalysis;
use pv_xml::Document;

/// Element names used by the enumerated spaces: `a`, `b`, `c`, …
/// (`k ≤ 4`; the exhaustive regime is only tractable for tiny alphabets).
pub const SWEEP_NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// The content-model catalogue over the first `k` sweep names, as DTD
/// content-spec strings. Deterministic order; every enumerated DTD assigns
/// each element one entry.
///
/// The catalogue is built from shape templates instantiated with every
/// (ordered) choice of names, deduplicated:
/// `EMPTY`, `ANY`, `(#PCDATA)`, mixed `(#PCDATA | x)*`, the unary shapes
/// `(x)`, `(x?)`, `(x*)`, `(x+)`, the binary shapes `(x, y)`, `(x?, y)`,
/// `(x, y?)`, `(x | y)`, `(x, y*)`, and the paper's T2 shape `((x | y), y)`.
pub fn model_catalogue(k: usize) -> Vec<String> {
    let names = &SWEEP_NAMES[..k.clamp(1, SWEEP_NAMES.len())];
    let mut out: Vec<String> = vec!["EMPTY".into(), "ANY".into(), "(#PCDATA)".into()];
    for &x in names {
        out.push(format!("(#PCDATA | {x})*"));
        out.push(format!("({x})"));
        out.push(format!("({x}?)"));
        out.push(format!("({x}*)"));
        out.push(format!("({x}+)"));
    }
    for &x in names {
        for &y in names {
            out.push(format!("({x}, {y})"));
            out.push(format!("({x}?, {y})"));
            out.push(format!("({x}, {y}?)"));
            if x < y {
                out.push(format!("({x} | {y})"));
            }
            out.push(format!("({x}, {y}*)"));
            out.push(format!("(({x} | {y}), {y})"));
        }
    }
    out.dedup();
    out
}

/// A trimmed catalogue for `k ≥ 3`, where the full cartesian product is
/// intractable: drops the redundant unary/optional variants and keeps the
/// shapes that exercise distinct recognizer paths (sequencing, choice,
/// star groups, mixed content, recursion).
pub fn model_catalogue_small(k: usize) -> Vec<String> {
    let names = &SWEEP_NAMES[..k.clamp(1, SWEEP_NAMES.len())];
    let mut out: Vec<String> = vec!["EMPTY".into(), "(#PCDATA)".into()];
    // One mixed-content shape and a couple of multi-atom shapes chosen to
    // chain the whole alphabet (recursion arises from the product anyway).
    out.push(format!("(#PCDATA | {})*", names[0]));
    for &x in names {
        out.push(format!("({x}?)"));
    }
    for w in names.windows(2) {
        out.push(format!("({}, {})", w[0], w[1]));
        out.push(format!("({} | {})", w[0], w[1]));
        out.push(format!("(({} | {}), {})", w[0], w[1], w[1]));
        out.push(format!("({}, {}*)", w[0], w[1]));
    }
    out.dedup();
    out
}

/// Every DTD assigning one of `models` to each of the first `k` sweep
/// names, compiled with root = the first name. Combinations the DTD layer
/// rejects — notably assignments leaving an element *unusable* (violating
/// the problem precondition that every declared element can occur in some
/// valid document) — are skipped; the survivors are exactly the legal
/// problem instances of the space.
pub fn enumerate_dtds(k: usize, models: &[String]) -> Vec<DtdAnalysis> {
    let names = &SWEEP_NAMES[..k.clamp(1, SWEEP_NAMES.len())];
    let mut out = Vec::new();
    let mut idx = vec![0usize; names.len()];
    loop {
        let mut src = String::new();
        for (name, &mi) in names.iter().zip(idx.iter()) {
            src.push_str(&format!("<!ELEMENT {name} {}>", models[mi]));
        }
        if let Ok(analysis) = DtdAnalysis::parse(&src, names[0]) {
            out.push(analysis);
        }
        // Odometer increment over the model indices.
        let mut pos = 0;
        loop {
            if pos == idx.len() {
                return out;
            }
            idx[pos] += 1;
            if idx[pos] < models.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// One enumerated tree: a text run, or an element with a child forest.
#[derive(Clone)]
enum Tree {
    Text,
    Elem(usize, Vec<Tree>),
}

impl Tree {
    fn nodes(&self) -> usize {
        match self {
            Tree::Text => 1,
            Tree::Elem(_, children) => {
                1 + children.iter().map(Tree::nodes).sum::<usize>()
            }
        }
    }
}

/// All forests over `k` names with at most `budget` total nodes, skipping
/// adjacent text runs (the `δ` view collapses them, so they would only
/// duplicate coverage).
fn forests(k: usize, budget: usize) -> Vec<Vec<Tree>> {
    let mut out = vec![Vec::new()];
    if budget == 0 {
        return out;
    }
    for first_size in 1..=budget {
        // Every tree of exactly `first_size` nodes…
        let firsts = trees(k, first_size);
        // …followed by every remaining forest.
        for rest in forests(k, budget - first_size) {
            for t in &firsts {
                if matches!(t, Tree::Text)
                    && matches!(rest.first(), Some(Tree::Text))
                {
                    continue; // σσ collapses to σ
                }
                let mut f = Vec::with_capacity(1 + rest.len());
                f.push(t.clone());
                f.extend(rest.iter().cloned());
                out.push(f);
            }
        }
    }
    out
}

/// All trees of exactly `size` nodes over `k` names (σ leaves allowed).
fn trees(k: usize, size: usize) -> Vec<Tree> {
    let mut out = Vec::new();
    if size == 0 {
        return out;
    }
    if size == 1 {
        out.push(Tree::Text);
    }
    for forest in forests(k, size - 1) {
        if forest.iter().map(Tree::nodes).sum::<usize>() != size - 1 {
            continue;
        }
        for name in 0..k {
            out.push(Tree::Elem(name, forest.clone()));
        }
    }
    out
}

/// Every document rooted at the first sweep name with at most `max_nodes`
/// nodes in total (the root included; σ runs count one node each). The
/// documents are DTD-independent — enumerate once, reuse across the whole
/// DTD product.
pub fn enumerate_documents(k: usize, max_nodes: usize) -> Vec<Document> {
    let k = k.clamp(1, SWEEP_NAMES.len());
    let mut out = Vec::new();
    // `forests` yields every forest of total size ≤ budget exactly once
    // (the first tree's size fixes a unique decomposition), so one call
    // with the full budget covers the whole space.
    for forest in forests(k, max_nodes.max(1) - 1) {
        let mut doc = Document::new(SWEEP_NAMES[0]);
        let root = doc.root();
        build_forest(&mut doc, root, &forest);
        debug_assert!(doc.check_integrity().is_ok());
        out.push(doc);
    }
    out
}

fn build_forest(doc: &mut Document, parent: pv_xml::NodeId, forest: &[Tree]) {
    for tree in forest {
        match tree {
            Tree::Text => {
                doc.append_text(parent, "t").unwrap();
            }
            Tree::Elem(name, children) => {
                let node = doc.append_element(parent, SWEEP_NAMES[*name]).unwrap();
                build_forest(doc, node, children);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_deduplicated_and_parses() {
        let models = model_catalogue(2);
        for (i, m) in models.iter().enumerate() {
            assert!(!models[..i].contains(m), "duplicate model {m}");
            // Syntactic well-formedness (usability is assignment-dependent
            // and checked by enumerate_dtds itself).
            let src = format!("<!ELEMENT a {m}><!ELEMENT b EMPTY>");
            pv_dtd::Dtd::parse(&src).unwrap_or_else(|e| panic!("{m}: {e}"));
        }
        assert!(models.len() >= 20, "{}", models.len());
        assert!(model_catalogue_small(3).len() < models.len());
    }

    #[test]
    fn dtd_product_covers_the_legal_instances() {
        let models = model_catalogue(1);
        let dtds = enumerate_dtds(1, &models);
        // Single-element space: models forcing unbounded self-recursion
        // (e.g. `(a)` — no finite valid document exists) are filtered;
        // EMPTY/ANY/PCDATA/mixed/optional/star survive.
        assert!((5..models.len()).contains(&dtds.len()), "{}", dtds.len());
        let models2 = model_catalogue_small(2);
        let dtds2 = enumerate_dtds(2, &models2);
        // Unusable-element assignments (e.g. a EMPTY with b unreachable)
        // are filtered; a meaningful slice of the product must survive.
        assert!(dtds2.len() > 10, "{}", dtds2.len());
        assert!(dtds2.len() < models2.len() * models2.len());
        // Root is always the first sweep name.
        assert!(dtds2.iter().all(|a| a.name(a.root) == "a"));
    }

    #[test]
    fn document_enumeration_counts_and_contains_known_shapes() {
        let docs = enumerate_documents(2, 4);
        // Exactly one empty <a/>; every doc within the node budget.
        assert_eq!(docs.iter().filter(|d| d.live_count() == 1).count(), 1);
        assert!(docs.iter().all(|d| d.live_count() <= 4));
        // No two serialize identically (enumeration is duplicate-free).
        let mut xml: Vec<String> = docs.iter().map(|d| d.to_xml()).collect();
        let n = xml.len();
        xml.sort();
        xml.dedup();
        assert_eq!(xml.len(), n, "duplicate documents enumerated");
        assert!(xml.contains(&"<a><b>t</b></a>".to_owned()), "missing known shape");
        assert!(xml.contains(&"<a><a/><b/></a>".to_owned()), "missing known shape");
    }
}
