//! # potential-validity — umbrella crate
//!
//! A complete Rust implementation of Iacob, Dekhtyar & Dekhtyar,
//! *On Potential Validity of Document-Centric XML Documents* (ICDE 2006):
//! linear-time checking of whether an in-progress XML document can still be
//! completed into a valid one by inserting markup only.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`xml`] ([`pv_xml`]) — XML parser, arena DOM, serializer, edit ops;
//! * [`dtd`] ([`pv_dtd`]) — DTD parser, normalization, reachability,
//!   recursion classification, built-in DTD corpus;
//! * [`grammar`] ([`pv_grammar`]) — the validity/PV grammars, standard
//!   validator, Earley baseline, extension witnesses, brute-force oracle;
//! * [`core`] ([`pv_core`]) — the paper's contribution: `δ_T`/`Δ_T`,
//!   the per-element DAG model, the ECRecognizer, whole-document and
//!   incremental potential-validity checking;
//! * [`par`] ([`pv_par`]) — the work-stealing parallelism layer: scoped
//!   regions for one-shot callers and the persistent [`pv_par::Pool`]
//!   behind the resident service;
//! * [`service`] ([`pv_service`]) — the resident validation server and
//!   its client (`pvx serve` / `pvx check --remote`): warm caches,
//!   parked workers, a newline-framed length-prefixed wire protocol;
//! * [`workload`] ([`pv_workload`]) — random DTD/document/trace generators;
//! * [`editor`] ([`pv_editor`]) — always-potentially-valid editing
//!   sessions.
//!
//! ## Quickstart
//!
//! ```
//! use potential_validity::prelude::*;
//!
//! // Compile a DTD (the paper's Figure 1) once…
//! let analysis = BuiltinDtd::Figure1.analysis();
//! let checker = PvChecker::new(&analysis);
//!
//! // …and check in-progress documents in linear time.
//! let doc = pv_xml::parse("<r><a><b>A quick brown</b> fox</a></r>").unwrap();
//! assert!(checker.check_document(&doc).is_potentially_valid());
//! ```
//!
//! ## Parallel quickstart
//!
//! Element nodes are independent ECPV instances, so big documents and
//! corpora shard across cores — with outcomes **bit-identical** to the
//! sequential checker (same first-failing node in document order, same
//! work counters), so parallelism is purely a wall-clock decision:
//!
//! ```
//! use potential_validity::prelude::*;
//!
//! let analysis = BuiltinDtd::Play.analysis();
//! let checker = PvChecker::new(&analysis);
//! let play = pv_workload::corpus::play(2_000);
//!
//! // One large document, per-node sharding; 0 = one worker per CPU.
//! let outcome = checker.check_document_parallel(&play, 0);
//! assert!(outcome.is_potentially_valid());
//! assert_eq!(outcome, checker.check_document(&play));
//!
//! // A corpus, per-document sharding: outcome i == check_document(&docs[i]).
//! let docs = pv_workload::corpus::batch(BuiltinDtd::Play, 8, 300).unwrap();
//! let outcomes = checker.check_batch(&docs, 4);
//! assert!(outcomes.iter().all(|o| o.is_potentially_valid()));
//! ```

pub use pv_core as core;
pub use pv_par as par;
pub use pv_dtd as dtd;
pub use pv_editor as editor;
pub use pv_grammar as grammar;
pub use pv_service as service;
pub use pv_workload as workload;
pub use pv_xml as xml;

/// The most common imports in one place.
pub mod prelude {
    pub use pv_core::checker::{PvChecker, PvOutcome, PvViolation};
    pub use pv_core::depth::DepthPolicy;
    pub use pv_core::engine::CheckEngine;
    pub use pv_core::token::{ChildSym, Tok, Tokens};
    pub use pv_dtd::builtin::BuiltinDtd;
    pub use pv_dtd::{Dtd, DtdAnalysis, DtdClass};
    pub use pv_editor::{EditError, EditorSession};
    pub use pv_grammar::validator::validate_document;
    pub use pv_grammar::witness::{complete_document, complete_tokens};
    pub use pv_xml::{parse, Document, NodeId};
}
